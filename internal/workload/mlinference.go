// ML inference workloads: phased large-model serving, post-paper. A
// request is processed in two phases with opposite resource appetites —
// prefill (the prompt pass, large matrix-matrix work, compute bound)
// and decode (autoregressive token generation, one full weight sweep
// per token, bandwidth bound). The work unit is a token; the phase
// weights come from the sequence-length mix (prompt tokens vs generated
// tokens), which is what makes the class configurable: a chat service
// is decode heavy, batch summarization is prefill heavy.
//
// The phase contrast is the point: a static power split tuned for the
// aggregate leaves performance on the table in both phases, which is
// what internal/recoord's online re-coordination recovers.

package workload

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/hw"
)

// mlPhases returns the prefill/decode phase pair with the given work
// weights. Per-token costs model a dense ~70B-parameter model served in
// moderate batches: prefill amortizes weight traffic across the batch
// (ops/byte far above any modeled GPU's machine balance), decode streams
// the full weight set per token (ops/byte far below it).
func mlPhases(prefillW, decodeW float64) []Phase {
	return []Phase{
		{
			Name:          "prefill",
			Weight:        prefillW,
			OpsPerUnit:    4e9,
			BytesPerUnit:  2e7,
			RandomFrac:    0,
			BandwidthEff:  0.85,
			ComputeEff:    0.80,
			Overlap:       4,
			ActivityBase:  0.95,
			StallActivity: 0.45,
		},
		{
			Name:          "decode",
			Weight:        decodeW,
			OpsPerUnit:    4e9,
			BytesPerUnit:  1.4e9,
			RandomFrac:    0.05, // scattered KV-cache reads
			BandwidthEff:  0.80,
			ComputeEff:    0.60,
			Overlap:       4,
			ActivityBase:  0.42,
			StallActivity: 0.25,
		},
	}
}

// NewMLInference builds a phased ML inference workload from a sequence
// length mix: seqTokens prompt tokens are prefilled and outTokens are
// decoded per request, so the phase weights are the token shares. The
// weights are normalized to an exact sum (see NormalizeWeights).
func NewMLInference(name string, seqTokens, outTokens float64) (Workload, error) {
	if !(seqTokens > 0) || !(outTokens > 0) || seqTokens > 1e12 || outTokens > 1e12 {
		return Workload{}, fmt.Errorf("ml workload %q: token counts must be in (0, 1e12], got seq=%v out=%v",
			name, seqTokens, outTokens)
	}
	total := seqTokens + outTokens
	w := Workload{
		Name:            name,
		Suite:           "ML",
		Desc:            fmt.Sprintf("LLM serving, %g prompt + %g generated tokens per request", seqTokens, outTokens),
		Kind:            hw.KindGPU,
		PerfUnit:        "ktok/s",
		PerfPerUnitRate: 1e-3,
		Phases:          mlPhases(seqTokens/total, outTokens/total),
	}
	if err := NormalizeWeights(w.Phases); err != nil {
		return Workload{}, fmt.Errorf("ml workload %q: %w", name, err)
	}
	if err := w.Validate(); err != nil {
		return Workload{}, err
	}
	return w, nil
}

// ParsePhaseSpec parses a phased ML workload description of the form
// "key=value,key=value". Two equivalent vocabularies are accepted:
//
//	seq=1024,out=512        sequence-length mix (prompt vs generated tokens)
//	prefill=2,decode=1      explicit phase weights (normalized)
//
// plus an optional name=<id> (default "llm"). The vocabularies cannot
// be mixed. Weights need not sum to 1 — they are normalized exactly.
func ParsePhaseSpec(spec string) (Workload, error) {
	name := "llm"
	vals := map[string]float64{}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" || v == "" {
			return Workload{}, fmt.Errorf("phase spec: malformed field %q (want key=value)", field)
		}
		if k == "name" {
			name = v
			continue
		}
		switch k {
		case "seq", "out", "prefill", "decode":
		default:
			return Workload{}, fmt.Errorf("phase spec: unknown key %q (valid: seq, out, prefill, decode, name)", k)
		}
		if _, dup := vals[k]; dup {
			return Workload{}, fmt.Errorf("phase spec: duplicate key %q", k)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return Workload{}, fmt.Errorf("phase spec: %s: %v", k, err)
		}
		vals[k] = f
	}
	_, hasSeq := vals["seq"]
	_, hasOut := vals["out"]
	_, hasPre := vals["prefill"]
	_, hasDec := vals["decode"]
	switch {
	case hasSeq || hasOut:
		if hasPre || hasDec {
			return Workload{}, fmt.Errorf("phase spec: cannot mix seq/out with prefill/decode weights")
		}
		if !hasSeq || !hasOut {
			return Workload{}, fmt.Errorf("phase spec: seq and out must both be given")
		}
		return NewMLInference(name, vals["seq"], vals["out"])
	case hasPre || hasDec:
		if !hasPre || !hasDec {
			return Workload{}, fmt.Errorf("phase spec: prefill and decode must both be given")
		}
		pre, dec := vals["prefill"], vals["decode"]
		if !(pre > 0) || !(dec > 0) || pre > 1e18 || dec > 1e18 {
			return Workload{}, fmt.Errorf("phase spec: weights must be positive finite, got prefill=%v decode=%v", pre, dec)
		}
		w := Workload{
			Name:            name,
			Suite:           "ML",
			Desc:            fmt.Sprintf("LLM serving, prefill:decode work ratio %g:%g", pre, dec),
			Kind:            hw.KindGPU,
			PerfUnit:        "ktok/s",
			PerfPerUnitRate: 1e-3,
			Phases:          mlPhases(pre, dec),
		}
		if err := NormalizeWeights(w.Phases); err != nil {
			return Workload{}, fmt.Errorf("phase spec: %w", err)
		}
		if err := w.Validate(); err != nil {
			return Workload{}, err
		}
		return w, nil
	default:
		return Workload{}, fmt.Errorf("phase spec %q: need seq=..,out=.. or prefill=..,decode=..", spec)
	}
}

// MLInference returns the stock phased serving mixes: a balanced
// interactive service, a decode-heavy chat mix, and a prefill-heavy
// batch-summarization mix.
func MLInference() []Workload {
	mustML := func(name string, seq, out float64) Workload {
		w, err := NewMLInference(name, seq, out)
		if err != nil {
			panic(err)
		}
		return w
	}
	return []Workload{
		mustML("llmserve", 1024, 512),
		mustML("llmchat", 256, 768),
		mustML("llmbatch", 3968, 128),
	}
}

// AllWorkloads returns every modeled workload: the Table 3 catalog
// followed by the ML inference additions. Lookup paths use this
// superset; figure reproductions stay on Catalog() so the paper
// artifacts keep their exact benchmark set.
func AllWorkloads() []Workload {
	return append(Catalog(), MLInference()...)
}

// PhasedWorkloads returns the modeled workloads with more than one
// phase and KindGPU — the set online re-coordination targets.
func PhasedWorkloads() []Workload {
	var out []Workload
	for _, w := range AllWorkloads() {
		if w.Kind == hw.KindGPU && len(w.Phases) > 1 {
			out = append(out, w)
		}
	}
	return out
}
