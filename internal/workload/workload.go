// Package workload defines analytic models of the benchmarks the paper
// studies (Table 3): eleven CPU benchmarks from HPCC, NPB, and UVA STREAM,
// and six GPU benchmarks from the CUDA examples and the ECP proxy apps.
//
// A workload is a sequence of phases; each phase is characterized by its
// compute operations and memory traffic per unit of work, its access
// pattern, how well compute and memory access overlap, and how much
// switching activity the processor sustains while running versus while
// stalled on memory. Only these characteristics matter for the
// power/performance dynamics the paper studies, so the models substitute
// for the real codes (see DESIGN.md).
package workload

import (
	"fmt"
	"sort"

	"repro/internal/hw"
)

// Phase describes one execution phase of a workload. Work is measured in
// abstract units (a byte moved for STREAM, a FLOP for DGEMM, an update for
// RandomAccess); performance is reported as units completed per second.
type Phase struct {
	// Name identifies the phase, e.g. "x-solve".
	Name string
	// Weight is the fraction of the workload's total work units executed
	// in this phase. Weights across a workload's phases sum to 1.
	Weight float64
	// OpsPerUnit is the number of processor operations per work unit.
	OpsPerUnit float64
	// BytesPerUnit is the DRAM traffic per work unit in bytes.
	BytesPerUnit float64
	// RandomFrac is the fraction of memory traffic that is random access
	// (row-activation heavy) rather than streaming.
	RandomFrac float64
	// BandwidthEff is the fraction of peak memory bandwidth the phase's
	// access pattern can reach even with unlimited power (random access
	// patterns are latency limited far below peak).
	BandwidthEff float64
	// ComputeEff is the fraction of peak compute throughput the phase can
	// reach (vectorization, ILP, instruction mix).
	ComputeEff float64
	// Overlap is the p-norm exponent combining compute time and memory
	// time: T = (Tc^p + Tm^p)^(1/p). p=1 models fully serialized compute
	// and memory access; large p models perfect overlap (T = max).
	Overlap float64
	// ActivityBase is the processor switching-activity factor while the
	// phase executes unstalled.
	ActivityBase float64
	// StallActivity is the (lower) activity factor while stalled on
	// memory.
	StallActivity float64
}

// Validate reports a descriptive error for out-of-range parameters.
func (p *Phase) Validate() error {
	switch {
	case p.Weight <= 0 || p.Weight > 1:
		return fmt.Errorf("phase %q: weight %v out of (0,1]", p.Name, p.Weight)
	case p.OpsPerUnit < 0 || p.BytesPerUnit < 0:
		return fmt.Errorf("phase %q: negative work parameters", p.Name)
	case p.OpsPerUnit == 0 && p.BytesPerUnit == 0:
		return fmt.Errorf("phase %q: no work at all", p.Name)
	case p.RandomFrac < 0 || p.RandomFrac > 1:
		return fmt.Errorf("phase %q: random fraction %v out of [0,1]", p.Name, p.RandomFrac)
	case p.BandwidthEff <= 0 || p.BandwidthEff > 1:
		return fmt.Errorf("phase %q: bandwidth efficiency %v out of (0,1]", p.Name, p.BandwidthEff)
	case p.ComputeEff <= 0 || p.ComputeEff > 1:
		return fmt.Errorf("phase %q: compute efficiency %v out of (0,1]", p.Name, p.ComputeEff)
	case p.Overlap < 1:
		return fmt.Errorf("phase %q: overlap exponent %v below 1", p.Name, p.Overlap)
	case p.ActivityBase <= 0 || p.ActivityBase > 1:
		return fmt.Errorf("phase %q: base activity %v out of (0,1]", p.Name, p.ActivityBase)
	case p.StallActivity <= 0 || p.StallActivity > p.ActivityBase:
		return fmt.Errorf("phase %q: stall activity %v out of (0, base]", p.Name, p.StallActivity)
	}
	return nil
}

// Activity returns the effective processor activity factor when the phase
// spends fraction stallFrac of its time stalled on memory.
func (p *Phase) Activity(stallFrac float64) float64 {
	if stallFrac < 0 {
		stallFrac = 0
	}
	if stallFrac > 1 {
		stallFrac = 1
	}
	return p.ActivityBase*(1-stallFrac) + p.StallActivity*stallFrac
}

// ComputeIntensity returns ops per byte for the phase; +Inf-free: phases
// with zero traffic return a large sentinel.
func (p *Phase) ComputeIntensity() float64 {
	if p.BytesPerUnit == 0 {
		return 1e9
	}
	return p.OpsPerUnit / p.BytesPerUnit
}

// Workload is a named benchmark composed of one or more phases.
type Workload struct {
	// Name is the short identifier, e.g. "sra" or "dgemm".
	Name string
	// Suite is the benchmark's origin: "HPCC", "NPB", "UVA", "CUDA",
	// "ECP", or "HPL".
	Suite string
	// Desc is the Table 3 description.
	Desc string
	// Kind says whether this is a CPU or GPU benchmark.
	Kind hw.Kind
	// PerfUnit names the reported performance metric, e.g. "GB/s",
	// "GFLOP/s", "GUP/s".
	PerfUnit string
	// PerfPerUnitRate converts a work-unit rate (units/s) into the
	// reported metric (e.g. 1e-9 to report GB/s when the unit is a byte).
	PerfPerUnitRate float64
	// Phases is the phase list; weights sum to 1.
	Phases []Phase
}

// Validate reports a descriptive error if the workload or any phase is
// inconsistent.
func (w *Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("workload with empty name")
	}
	if len(w.Phases) == 0 {
		return fmt.Errorf("workload %q: no phases", w.Name)
	}
	if w.PerfPerUnitRate <= 0 {
		return fmt.Errorf("workload %q: non-positive perf scale", w.Name)
	}
	total := 0.0
	for i := range w.Phases {
		if err := w.Phases[i].Validate(); err != nil {
			return fmt.Errorf("workload %q: %w", w.Name, err)
		}
		total += w.Phases[i].Weight
	}
	if total < 0.999 || total > 1.001 {
		return fmt.Errorf("workload %q: phase weights sum to %v, want 1", w.Name, total)
	}
	return nil
}

// ComputeIntensity returns the work-weighted mean ops-per-byte across
// phases — the paper's notion of compute intensity.
func (w *Workload) ComputeIntensity() float64 {
	ops, bytes := 0.0, 0.0
	for _, p := range w.Phases {
		ops += p.Weight * p.OpsPerUnit
		bytes += p.Weight * p.BytesPerUnit
	}
	if bytes == 0 {
		return 1e9
	}
	return ops / bytes
}

// MeanActivity returns the work-weighted base activity, a rough proxy for
// the workload's maximum power appetite.
func (w *Workload) MeanActivity() float64 {
	a := 0.0
	for _, p := range w.Phases {
		a += p.Weight * p.ActivityBase
	}
	return a
}

// NormalizeWeights rescales the phases' weights in place so they sum to
// exactly 1.0 (bit-exact, not merely within tolerance). Weights built
// from float arithmetic — 1.0/3 per phase, sequence-length ratios —
// drift by an ulp or two; that drift either trips Validate's sum check
// or, worse, passes it and then mis-splits time in dyncoord plan tables
// whose slices are Weight/rate. After rescaling, the largest weight
// absorbs the residual so the in-order sum is exact; the exactness is
// checked, not assumed.
func NormalizeWeights(phases []Phase) error {
	if len(phases) == 0 {
		return fmt.Errorf("normalize: no phases")
	}
	sum := 0.0
	for i := range phases {
		if w := phases[i].Weight; w <= 0 || !(w < 1e18) {
			return fmt.Errorf("normalize: phase %q: weight %v not a positive finite number",
				phases[i].Name, w)
		}
		sum += phases[i].Weight
	}
	largest := 0
	for i := range phases {
		phases[i].Weight /= sum
		if phases[i].Weight > phases[largest].Weight {
			largest = i
		}
	}
	// Float addition is not associative, so force the residual into the
	// largest weight until the in-order sum (the one Validate and the
	// plan tables compute) is exactly 1. This converges in one or two
	// rounds; the bound guards pathological inputs.
	for round := 0; round < 4; round++ {
		total := 0.0
		for i := range phases {
			total += phases[i].Weight
		}
		if total == 1 {
			return nil
		}
		phases[largest].Weight += 1 - total
		if phases[largest].Weight <= 0 {
			return fmt.Errorf("normalize: residual %v exceeds largest weight", total-1)
		}
	}
	return fmt.Errorf("normalize: weights did not converge to an exact sum of 1")
}

// Normalized returns a copy of the workload with phase weights
// normalized to an exact sum of 1 via NormalizeWeights.
func (w Workload) Normalized() (Workload, error) {
	out := w
	out.Phases = append([]Phase(nil), w.Phases...)
	if err := NormalizeWeights(out.Phases); err != nil {
		return Workload{}, fmt.Errorf("workload %q: %w", w.Name, err)
	}
	return out, nil
}

// ByName returns the workload with the given name from the full model
// set (the Table 3 catalog plus the ML inference additions). The error
// lists valid names.
func ByName(name string) (Workload, error) {
	for _, w := range AllWorkloads() {
		if w.Name == name {
			return w, nil
		}
	}
	var names []string
	for _, w := range AllWorkloads() {
		names = append(names, w.Name)
	}
	sort.Strings(names)
	return Workload{}, fmt.Errorf("unknown workload %q (valid: %v)", name, names)
}

// CPUWorkloads returns the eleven CPU benchmarks of Table 3 in paper
// order.
func CPUWorkloads() []Workload {
	var out []Workload
	for _, w := range Catalog() {
		if w.Kind == hw.KindCPU {
			out = append(out, w)
		}
	}
	return out
}

// GPUWorkloads returns the six GPU benchmarks of Table 3 in paper order.
func GPUWorkloads() []Workload {
	var out []Workload
	for _, w := range Catalog() {
		if w.Kind == hw.KindGPU {
			out = append(out, w)
		}
	}
	return out
}
