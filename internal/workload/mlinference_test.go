package workload

import (
	"math"
	"strings"
	"testing"

	"repro/internal/hw"
)

// inOrderSum reproduces the summation order Validate and the dyncoord
// plan tables use: left-to-right over the phase slice.
func inOrderSum(phases []Phase) float64 {
	total := 0.0
	for i := range phases {
		total += phases[i].Weight
	}
	return total
}

func phasesWithWeights(weights ...float64) []Phase {
	out := make([]Phase, len(weights))
	for i, w := range weights {
		out[i] = Phase{
			Name: "p", Weight: w, OpsPerUnit: 1, BytesPerUnit: 1,
			BandwidthEff: 0.5, ComputeEff: 0.5, Overlap: 1,
			ActivityBase: 0.5, StallActivity: 0.25,
		}
	}
	return out
}

// TestRegressPhaseWeightNormalizationExactSum is the satellite-2
// regression: phase weights built from float arithmetic (1/3 per phase,
// 1/7 per phase, sequence-length ratios) can sum to 1±ε. Before
// NormalizeWeights, Validate either wrongly rejected such workloads or
// silently accepted an inexact sum that mis-splits time in dyncoord
// plan tables. Normalization must produce an in-order sum of exactly
// 1.0 — bit-exact, not within tolerance.
func TestRegressPhaseWeightNormalizationExactSum(t *testing.T) {
	third := 1.0 / 3
	seventh := 1.0 / 7
	cases := []struct {
		name    string
		weights []float64
	}{
		{"thirds", []float64{third, third, third}},
		{"sevenths", []float64{seventh, seventh, seventh, seventh, seventh, seventh, seventh}},
		{"seq-mix-1024-512", []float64{1024.0 / 1536, 512.0 / 1536}},
		{"drifted-pair", []float64{0.7, 0.30000000000000004}},
		{"unnormalized-ratio", []float64{2, 1}},
		{"tolerance-edge-low", []float64{0.4995, 0.4995}},  // sums to 0.999: Validate's old edge
		{"tolerance-edge-high", []float64{0.5005, 0.5005}}, // sums to 1.001
		{"wrongly-rejected-pre", []float64{0.499, 0.499}},  // 0.998: outside old tolerance entirely
		{"single", []float64{0.9999999}},
		{"many-tiny", func() []float64 {
			ws := make([]float64, 13)
			for i := range ws {
				ws[i] = 1.0 / 13
			}
			return ws
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			phases := phasesWithWeights(tc.weights...)
			if err := NormalizeWeights(phases); err != nil {
				t.Fatalf("NormalizeWeights: %v", err)
			}
			if got := inOrderSum(phases); got != 1 {
				t.Fatalf("in-order weight sum after normalization = %.17g, want exactly 1", got)
			}
			for i := range phases {
				if w := phases[i].Weight; w <= 0 || w > 1 {
					t.Fatalf("normalized weight %d = %v out of (0,1]", i, w)
				}
			}
			w := Workload{
				Name: "norm", Kind: hw.KindCPU, PerfUnit: "u/s",
				PerfPerUnitRate: 1, Phases: phases,
			}
			if err := w.Validate(); err != nil {
				t.Fatalf("Validate after normalization: %v", err)
			}
		})
	}
}

func TestNormalizeWeightsRejectsBadInput(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
	}{
		{"empty", nil},
		{"zero", []float64{0.5, 0}},
		{"negative", []float64{0.5, -0.1}},
		{"nan", []float64{0.5, nan()}},
		{"inf", []float64{0.5, math.Inf(1)}},
		{"huge", []float64{1e19, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := NormalizeWeights(phasesWithWeights(tc.weights...)); err == nil {
				t.Fatalf("NormalizeWeights(%v) accepted", tc.weights)
			}
		})
	}
}

func nan() float64 {
	zero := 0.0
	return zero / zero
}

func TestNormalizedPreservesRatios(t *testing.T) {
	w := Workload{
		Name: "ratio", Kind: hw.KindCPU, PerfUnit: "u/s", PerfPerUnitRate: 1,
		Phases: phasesWithWeights(3, 1),
	}
	n, err := w.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Phases[0].Weight; got < 0.7499 || got > 0.7501 {
		t.Fatalf("normalized first weight = %v, want 0.75", got)
	}
	if inOrderSum(n.Phases) != 1 {
		t.Fatalf("normalized sum inexact")
	}
	// The receiver must be untouched.
	if w.Phases[0].Weight != 3 {
		t.Fatalf("Normalized mutated receiver: %v", w.Phases[0].Weight)
	}
}

func TestMLInferenceWorkloadsValid(t *testing.T) {
	mls := MLInference()
	if len(mls) != 3 {
		t.Fatalf("MLInference returned %d workloads, want 3", len(mls))
	}
	for _, w := range mls {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if w.Kind != hw.KindGPU {
			t.Errorf("%s: kind %v, want gpu", w.Name, w.Kind)
		}
		if len(w.Phases) != 2 {
			t.Fatalf("%s: %d phases, want prefill+decode", w.Name, len(w.Phases))
		}
		if inOrderSum(w.Phases) != 1 {
			t.Errorf("%s: weights sum %.17g, want exactly 1", w.Name, inOrderSum(w.Phases))
		}
		pre, dec := w.Phases[0], w.Phases[1]
		if pre.Name != "prefill" || dec.Name != "decode" {
			t.Fatalf("%s: phase names %q, %q", w.Name, pre.Name, dec.Name)
		}
		// The class's defining contrast: prefill far above any modeled
		// GPU's machine balance, decode far below it.
		if pre.ComputeIntensity() < 50 {
			t.Errorf("%s: prefill intensity %v not compute bound", w.Name, pre.ComputeIntensity())
		}
		if dec.ComputeIntensity() > 10 {
			t.Errorf("%s: decode intensity %v not bandwidth bound", w.Name, dec.ComputeIntensity())
		}
	}
	// Mix ordering: chat is decode heavy, batch is prefill heavy.
	byName := map[string]Workload{}
	for _, w := range mls {
		byName[w.Name] = w
	}
	if byName["llmchat"].Phases[1].Weight <= byName["llmserve"].Phases[1].Weight {
		t.Errorf("llmchat should be more decode heavy than llmserve")
	}
	if byName["llmbatch"].Phases[0].Weight <= byName["llmserve"].Phases[0].Weight {
		t.Errorf("llmbatch should be more prefill heavy than llmserve")
	}
}

func TestNewMLInferenceRejectsBadMix(t *testing.T) {
	for _, tc := range [][2]float64{{0, 1}, {1, 0}, {-1, 1}, {1, -1}, {nan(), 1}, {1e13, 1}} {
		if _, err := NewMLInference("bad", tc[0], tc[1]); err == nil {
			t.Errorf("NewMLInference(%v, %v) accepted", tc[0], tc[1])
		}
	}
}

func TestParsePhaseSpec(t *testing.T) {
	good := []struct {
		spec    string
		wantPre float64 // approximate prefill weight
	}{
		{"seq=1024,out=512", 2.0 / 3},
		{"seq=256, out=768", 0.25},
		{"prefill=1,decode=1", 0.5},
		{"prefill=0.333333,decode=0.666667", 1.0 / 3},
		{"name=mix,seq=100,out=300", 0.25},
		{" seq=1 , out=1 , name=tiny ", 0.5},
	}
	for _, tc := range good {
		w, err := ParsePhaseSpec(tc.spec)
		if err != nil {
			t.Errorf("ParsePhaseSpec(%q): %v", tc.spec, err)
			continue
		}
		if err := w.Validate(); err != nil {
			t.Errorf("ParsePhaseSpec(%q): invalid workload: %v", tc.spec, err)
		}
		if inOrderSum(w.Phases) != 1 {
			t.Errorf("ParsePhaseSpec(%q): weights sum %.17g, want exactly 1", tc.spec, inOrderSum(w.Phases))
		}
		if got := w.Phases[0].Weight; got < tc.wantPre-1e-6 || got > tc.wantPre+1e-6 {
			t.Errorf("ParsePhaseSpec(%q): prefill weight %v, want ~%v", tc.spec, got, tc.wantPre)
		}
	}
	bad := []string{
		"",
		"seq=1024",
		"out=512",
		"seq=0,out=512",
		"seq=-5,out=512",
		"seq=abc,out=512",
		"seq=1024,out=512,prefill=1,decode=1",
		"prefill=1",
		"decode=1",
		"prefill=0,decode=1",
		"prefill=1,decode=1,decode=2",
		"bogus=1",
		"seq=1024,out",
		"=,=",
		"seq=NaN,out=2",
		"seq=+Inf,out=2",
		"prefill=1e300,decode=1e-300",
	}
	for _, spec := range bad {
		if w, err := ParsePhaseSpec(spec); err == nil {
			t.Errorf("ParsePhaseSpec(%q) accepted: %+v", spec, w)
		}
	}
}

func TestAllWorkloadsSuperset(t *testing.T) {
	all := AllWorkloads()
	if len(all) != len(Catalog())+len(MLInference()) {
		t.Fatalf("AllWorkloads len %d, want catalog %d + ml %d",
			len(all), len(Catalog()), len(MLInference()))
	}
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
	}
	if w, err := ByName("llmserve"); err != nil || w.Name != "llmserve" {
		t.Fatalf("ByName(llmserve) = %v, %v", w.Name, err)
	}
	found := false
	for _, w := range PhasedWorkloads() {
		if w.Kind != hw.KindGPU || len(w.Phases) < 2 {
			t.Errorf("PhasedWorkloads returned %s: kind %v, %d phases", w.Name, w.Kind, len(w.Phases))
		}
		if w.Name == "llmchat" {
			found = true
		}
	}
	if !found {
		t.Errorf("PhasedWorkloads missing llmchat")
	}
	// The paper catalog is untouched: figure reproductions depend on it.
	for _, w := range Catalog() {
		if strings.HasPrefix(w.Name, "llm") {
			t.Errorf("ML workload %q leaked into the Table 3 catalog", w.Name)
		}
	}
}

// FuzzParsePhaseSpec drives the spec grammar with arbitrary input: no
// panic, and any accepted spec must yield a workload that validates
// with a bit-exact weight sum.
func FuzzParsePhaseSpec(f *testing.F) {
	for _, seed := range []string{
		"seq=1024,out=512",
		"prefill=2,decode=1",
		"name=x,seq=1,out=1",
		"seq=1e6,out=1e-6",
		"seq=,out=",
		"prefill=NaN,decode=1",
		"a=b,c=d",
		",,,",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		w, err := ParsePhaseSpec(spec)
		if err != nil {
			return
		}
		if verr := w.Validate(); verr != nil {
			t.Fatalf("accepted spec %q yields invalid workload: %v", spec, verr)
		}
		if got := inOrderSum(w.Phases); got != 1 {
			t.Fatalf("accepted spec %q: weight sum %.17g, want exactly 1", spec, got)
		}
	})
}
