package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hw"
)

func TestSyntheticValidation(t *testing.T) {
	good := SyntheticSpec{Name: "x", Kind: hw.KindCPU, OpsPerByte: 1,
		Randomness: 0.1, Vectorized: 0.5, OverlapQuality: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []struct {
		name string
		mut  func(s *SyntheticSpec)
	}{
		{"empty name", func(s *SyntheticSpec) { s.Name = "" }},
		{"zero intensity", func(s *SyntheticSpec) { s.OpsPerByte = 0 }},
		{"randomness", func(s *SyntheticSpec) { s.Randomness = 1.5 }},
		{"vectorized", func(s *SyntheticSpec) { s.Vectorized = -0.1 }},
		{"overlap", func(s *SyntheticSpec) { s.OverlapQuality = 2 }},
		{"imbalance", func(s *SyntheticSpec) { s.PhaseImbalance = 1.5 }},
	}
	for _, m := range mutations {
		s := good
		m.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s accepted", m.name)
		}
		if _, err := s.Build(); err == nil {
			t.Errorf("%s built", m.name)
		}
	}
}

func TestSyntheticBuildAlwaysValid(t *testing.T) {
	// Property: any in-range spec builds a workload that passes the full
	// catalog validation.
	f := func(intensity, rnd, vec, ovl, imb float64) bool {
		spec := SyntheticSpec{
			Name:           "prop",
			Kind:           hw.KindCPU,
			OpsPerByte:     0.01 + math.Abs(math.Mod(intensity, 100)),
			Randomness:     math.Abs(math.Mod(rnd, 1)),
			Vectorized:     math.Abs(math.Mod(vec, 1)),
			OverlapQuality: math.Abs(math.Mod(ovl, 1)),
			PhaseImbalance: math.Abs(math.Mod(imb, 0.95)),
		}
		w, err := spec.Build()
		if err != nil {
			return false
		}
		return w.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSyntheticIntensityPreserved(t *testing.T) {
	for _, intensity := range []float64{0.1, 1, 10} {
		spec := SyntheticSpec{Name: "i", Kind: hw.KindCPU, OpsPerByte: intensity,
			Vectorized: 0.5, OverlapQuality: 0.5, PhaseImbalance: 0.4}
		w, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		if got := w.ComputeIntensity(); math.Abs(got-intensity) > intensity*0.01 {
			t.Errorf("intensity %v built as %v", intensity, got)
		}
	}
}

func TestSyntheticKnobsMoveTheRightWay(t *testing.T) {
	base := SyntheticSpec{Name: "b", Kind: hw.KindCPU, OpsPerByte: 1,
		Vectorized: 0.5, OverlapQuality: 0.5}
	bw, err := base.Build()
	if err != nil {
		t.Fatal(err)
	}
	// More randomness -> lower reachable bandwidth.
	r := base
	r.Randomness = 0.8
	rw, err := r.Build()
	if err != nil {
		t.Fatal(err)
	}
	if rw.Phases[0].BandwidthEff >= bw.Phases[0].BandwidthEff {
		t.Error("randomness should cut bandwidth efficiency")
	}
	// More vectorization -> higher compute efficiency and activity.
	v := base
	v.Vectorized = 1
	vw, err := v.Build()
	if err != nil {
		t.Fatal(err)
	}
	if vw.Phases[0].ComputeEff <= bw.Phases[0].ComputeEff {
		t.Error("vectorization should raise compute efficiency")
	}
	if vw.Phases[0].ActivityBase <= bw.Phases[0].ActivityBase {
		t.Error("vectorization should raise activity")
	}
	// Imbalance -> two phases.
	p := base
	p.PhaseImbalance = 0.5
	pw, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(pw.Phases) != 2 {
		t.Fatalf("imbalanced spec has %d phases", len(pw.Phases))
	}
	if pw.Phases[1].BytesPerUnit <= pw.Phases[0].BytesPerUnit {
		t.Error("heavy phase should carry more traffic")
	}
}

func TestScaledMovesIntensity(t *testing.T) {
	w, err := ByName("dgemm")
	if err != nil {
		t.Fatal(err)
	}
	big, err := Scaled(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := big.ComputeIntensity(), w.ComputeIntensity()/4; math.Abs(got-want) > want*1e-9 {
		t.Errorf("scaled intensity = %v, want %v", got, want)
	}
	if big.Name == w.Name {
		t.Error("scaled workload should carry a distinct name")
	}
	// The original is untouched.
	if w.Phases[0].BytesPerUnit == big.Phases[0].BytesPerUnit {
		t.Error("scaling aliased the phase slice")
	}
	if _, err := Scaled(w, 0); err == nil {
		t.Error("zero factor accepted")
	}
	if _, err := Scaled(w, -1); err == nil {
		t.Error("negative factor accepted")
	}
}
