package workload

import (
	"testing"

	"repro/internal/hw"
)

func TestCatalogAllValid(t *testing.T) {
	for _, w := range Catalog() {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestCatalogMatchesTable3(t *testing.T) {
	cpu := CPUWorkloads()
	gpu := GPUWorkloads()
	if len(cpu) != 11 {
		t.Errorf("CPU benchmark count = %d, want 11 (Table 3)", len(cpu))
	}
	if len(gpu) != 6 {
		t.Errorf("GPU benchmark count = %d, want 6 (Table 3)", len(gpu))
	}
	wantCPU := []string{"sra", "stream", "dgemm", "bt", "sp", "lu", "ep", "is", "cg", "ft", "mg"}
	for i, name := range wantCPU {
		if i >= len(cpu) || cpu[i].Name != name {
			t.Errorf("CPU workload %d = %q, want %q (paper order)", i, cpu[i].Name, name)
		}
	}
	wantGPU := []string{"sgemm", "gpustream", "cufft", "minife", "cloverleaf", "hpcg"}
	for i, name := range wantGPU {
		if i >= len(gpu) || gpu[i].Name != name {
			t.Errorf("GPU workload %d = %q, want %q (paper order)", i, gpu[i].Name, name)
		}
	}
}

func TestCatalogNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range Catalog() {
		if seen[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("dgemm")
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != hw.KindCPU || w.Suite != "HPCC" {
		t.Errorf("dgemm metadata wrong: %+v", w)
	}
	if _, err := ByName("linpack"); err == nil {
		t.Error("expected error for unknown workload")
	}
}

func TestComputeIntensityOrdering(t *testing.T) {
	// The paper's compute-intensity ordering must hold: DGEMM and EP are
	// compute intensive; STREAM, MG, CG are memory intensive.
	ci := func(name string) float64 {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return w.ComputeIntensity()
	}
	if ci("dgemm") <= ci("stream") {
		t.Error("DGEMM should have higher compute intensity than STREAM")
	}
	if ci("ep") <= ci("mg") {
		t.Error("EP should have higher compute intensity than MG")
	}
	if ci("sgemm") <= ci("minife") {
		t.Error("SGEMM should have higher compute intensity than MiniFE")
	}
	if ci("sgemm") <= ci("cloverleaf") {
		t.Error("SGEMM should have higher compute intensity than Cloverleaf")
	}
	if ci("cloverleaf") <= ci("hpcg") {
		t.Error("Cloverleaf should sit between SGEMM and HPCG")
	}
}

func TestPhaseActivityBlending(t *testing.T) {
	p := Phase{ActivityBase: 0.8, StallActivity: 0.4}
	if got := p.Activity(0); got != 0.8 {
		t.Errorf("unstalled activity = %v", got)
	}
	if got := p.Activity(1); got != 0.4 {
		t.Errorf("fully stalled activity = %v", got)
	}
	mid := p.Activity(0.5)
	if mid <= 0.4 || mid >= 0.8 {
		t.Errorf("blend out of range: %v", mid)
	}
	// Clamping.
	if p.Activity(-1) != 0.8 || p.Activity(2) != 0.4 {
		t.Error("stall fraction not clamped")
	}
}

func TestPhaseValidateRejectsBadPhases(t *testing.T) {
	good := Phase{
		Name: "p", Weight: 1, OpsPerUnit: 1, BytesPerUnit: 1,
		RandomFrac: 0, BandwidthEff: 0.5, ComputeEff: 0.5,
		Overlap: 2, ActivityBase: 0.8, StallActivity: 0.4,
	}
	mutations := []struct {
		name string
		mut  func(p *Phase)
	}{
		{"zero weight", func(p *Phase) { p.Weight = 0 }},
		{"weight over 1", func(p *Phase) { p.Weight = 1.5 }},
		{"negative ops", func(p *Phase) { p.OpsPerUnit = -1 }},
		{"no work", func(p *Phase) { p.OpsPerUnit = 0; p.BytesPerUnit = 0 }},
		{"random frac over 1", func(p *Phase) { p.RandomFrac = 1.5 }},
		{"zero bw eff", func(p *Phase) { p.BandwidthEff = 0 }},
		{"zero compute eff", func(p *Phase) { p.ComputeEff = 0 }},
		{"overlap below 1", func(p *Phase) { p.Overlap = 0.5 }},
		{"zero activity", func(p *Phase) { p.ActivityBase = 0 }},
		{"stall above base", func(p *Phase) { p.StallActivity = 0.9 }},
	}
	for _, m := range mutations {
		p := good
		m.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate() accepted invalid phase", m.name)
		}
	}
}

func TestWorkloadValidateRejectsBadWorkloads(t *testing.T) {
	w := Workload{Name: "", PerfPerUnitRate: 1}
	if err := w.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	w = Workload{Name: "x", PerfPerUnitRate: 1}
	if err := w.Validate(); err == nil {
		t.Error("no phases accepted")
	}
	good, _ := ByName("dgemm")
	bad := good
	bad.PerfPerUnitRate = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero perf scale accepted")
	}
	// Weights that don't sum to 1.
	bad = good
	bad.Phases = []Phase{good.Phases[0], good.Phases[0]}
	if err := bad.Validate(); err == nil {
		t.Error("weights summing to 2 accepted")
	}
}

func TestMultiPhaseWorkloadsExist(t *testing.T) {
	// The paper attributes the irregular curves of BT and MG to multiple
	// phases with different access patterns; the models must reflect that.
	for _, name := range []string{"bt", "sp", "lu", "ft", "mg"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(w.Phases) < 2 {
			t.Errorf("%s should be multi-phase", name)
		}
	}
	for _, name := range []string{"ep", "dgemm", "stream"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(w.Phases) != 1 {
			t.Errorf("%s should be single-phase (kernel benchmark)", name)
		}
	}
}

func TestMeanActivityRanges(t *testing.T) {
	for _, w := range Catalog() {
		a := w.MeanActivity()
		if a <= 0 || a > 1 {
			t.Errorf("%s mean activity %v out of (0,1]", w.Name, a)
		}
	}
	dgemm, _ := ByName("dgemm")
	sra, _ := ByName("sra")
	if dgemm.MeanActivity() <= sra.MeanActivity() {
		t.Error("DGEMM should have higher activity than SRA")
	}
}

func TestComputeIntensitySentinel(t *testing.T) {
	p := Phase{OpsPerUnit: 5, BytesPerUnit: 0}
	if p.ComputeIntensity() < 1e8 {
		t.Error("zero-traffic phase should return large sentinel")
	}
	w := Workload{Phases: []Phase{{Weight: 1, OpsPerUnit: 5, BytesPerUnit: 0}}}
	if w.ComputeIntensity() < 1e8 {
		t.Error("zero-traffic workload should return large sentinel")
	}
}
