package workload

import "repro/internal/hw"

// Catalog returns all seventeen benchmarks of Table 3 in paper order:
// eleven CPU benchmarks followed by six GPU benchmarks. Parameters are
// calibrated against the paper's qualitative descriptions (workload
// pattern column of Table 3) and the power/performance anchors its
// figures report; see the calibration tests and DESIGN.md.
func Catalog() []Workload {
	return []Workload{
		// ----- CPU benchmarks -----
		{
			Name: "sra", Suite: "HPCC",
			Desc: "Embarrassingly parallel, random memory access (star RandomAccess)",
			Kind: hw.KindCPU, PerfUnit: "GUP/s", PerfPerUnitRate: 1e-9,
			Phases: []Phase{{
				Name: "update", Weight: 1,
				OpsPerUnit: 6, BytesPerUnit: 128,
				RandomFrac: 1.0, BandwidthEff: 0.08, ComputeEff: 0.5,
				Overlap: 1.3, ActivityBase: 0.60, StallActivity: 0.40,
			}},
		},
		{
			Name: "stream", Suite: "UVA",
			Desc: "Synthetic, measuring memory bandwidth",
			Kind: hw.KindCPU, PerfUnit: "GB/s", PerfPerUnitRate: 1e-9,
			Phases: []Phase{{
				Name: "triad", Weight: 1,
				OpsPerUnit: 0.085, BytesPerUnit: 1,
				RandomFrac: 0, BandwidthEff: 0.80, ComputeEff: 0.70,
				Overlap: 3, ActivityBase: 0.60, StallActivity: 0.30,
			}},
		},
		{
			Name: "dgemm", Suite: "HPCC",
			Desc: "Matrix multiplication, compute intensive",
			Kind: hw.KindCPU, PerfUnit: "GFLOP/s", PerfPerUnitRate: 1e-9,
			Phases: []Phase{{
				Name: "gemm", Weight: 1,
				OpsPerUnit: 1, BytesPerUnit: 0.06,
				RandomFrac: 0.04, BandwidthEff: 0.70, ComputeEff: 0.90,
				Overlap: 3, ActivityBase: 0.89, StallActivity: 0.40,
			}},
		},
		{
			Name: "bt", Suite: "NPB",
			Desc: "Block Tri-diagonal solver, compute intensive",
			Kind: hw.KindCPU, PerfUnit: "GFLOP/s", PerfPerUnitRate: 1e-9,
			Phases: []Phase{
				{Name: "rhs", Weight: 0.25, OpsPerUnit: 1, BytesPerUnit: 0.30,
					RandomFrac: 0.02, BandwidthEff: 0.65, ComputeEff: 0.50,
					Overlap: 2, ActivityBase: 0.78, StallActivity: 0.40},
				{Name: "x-solve", Weight: 0.25, OpsPerUnit: 1, BytesPerUnit: 0.12,
					RandomFrac: 0.03, BandwidthEff: 0.60, ComputeEff: 0.52,
					Overlap: 2, ActivityBase: 0.84, StallActivity: 0.42},
				{Name: "y-solve", Weight: 0.25, OpsPerUnit: 1, BytesPerUnit: 0.15,
					RandomFrac: 0.03, BandwidthEff: 0.60, ComputeEff: 0.52,
					Overlap: 2, ActivityBase: 0.84, StallActivity: 0.42},
				{Name: "z-solve", Weight: 0.25, OpsPerUnit: 1, BytesPerUnit: 0.20,
					RandomFrac: 0.04, BandwidthEff: 0.55, ComputeEff: 0.50,
					Overlap: 2, ActivityBase: 0.82, StallActivity: 0.42},
			},
		},
		{
			Name: "sp", Suite: "NPB",
			Desc: "Scalar Penta-diagonal solver, compute/memory",
			Kind: hw.KindCPU, PerfUnit: "GFLOP/s", PerfPerUnitRate: 1e-9,
			Phases: []Phase{
				{Name: "rhs", Weight: 0.30, OpsPerUnit: 1, BytesPerUnit: 0.55,
					RandomFrac: 0.02, BandwidthEff: 0.72, ComputeEff: 0.45,
					Overlap: 2.2, ActivityBase: 0.70, StallActivity: 0.38},
				{Name: "x-solve", Weight: 0.23, OpsPerUnit: 1, BytesPerUnit: 0.35,
					RandomFrac: 0.02, BandwidthEff: 0.68, ComputeEff: 0.48,
					Overlap: 2.2, ActivityBase: 0.74, StallActivity: 0.38},
				{Name: "y-solve", Weight: 0.23, OpsPerUnit: 1, BytesPerUnit: 0.40,
					RandomFrac: 0.02, BandwidthEff: 0.68, ComputeEff: 0.48,
					Overlap: 2.2, ActivityBase: 0.74, StallActivity: 0.38},
				{Name: "z-solve", Weight: 0.24, OpsPerUnit: 1, BytesPerUnit: 0.45,
					RandomFrac: 0.03, BandwidthEff: 0.62, ComputeEff: 0.46,
					Overlap: 2.2, ActivityBase: 0.72, StallActivity: 0.38},
			},
		},
		{
			Name: "lu", Suite: "NPB",
			Desc: "Lower-Upper Gauss-Seidel solver, compute/memory",
			Kind: hw.KindCPU, PerfUnit: "GFLOP/s", PerfPerUnitRate: 1e-9,
			Phases: []Phase{
				{Name: "lower", Weight: 0.5, OpsPerUnit: 1, BytesPerUnit: 0.30,
					RandomFrac: 0.05, BandwidthEff: 0.55, ComputeEff: 0.50,
					Overlap: 1.8, ActivityBase: 0.76, StallActivity: 0.40},
				{Name: "upper", Weight: 0.5, OpsPerUnit: 1, BytesPerUnit: 0.35,
					RandomFrac: 0.07, BandwidthEff: 0.52, ComputeEff: 0.48,
					Overlap: 1.8, ActivityBase: 0.76, StallActivity: 0.40},
			},
		},
		{
			Name: "ep", Suite: "NPB",
			Desc: "Embarrassingly Parallel, compute intensive",
			Kind: hw.KindCPU, PerfUnit: "GFLOP/s", PerfPerUnitRate: 1e-9,
			Phases: []Phase{{
				Name: "gauss", Weight: 1,
				OpsPerUnit: 1, BytesPerUnit: 0.015,
				RandomFrac: 0, BandwidthEff: 0.60, ComputeEff: 0.30,
				Overlap: 3, ActivityBase: 0.88, StallActivity: 0.45,
			}},
		},
		{
			Name: "is", Suite: "NPB",
			Desc: "Integer Sort, random memory access",
			Kind: hw.KindCPU, PerfUnit: "Mkey/s", PerfPerUnitRate: 1e-6,
			Phases: []Phase{{
				Name: "rank", Weight: 1,
				OpsPerUnit: 10, BytesPerUnit: 40,
				RandomFrac: 0.60, BandwidthEff: 0.12, ComputeEff: 0.40,
				Overlap: 1.5, ActivityBase: 0.55, StallActivity: 0.36,
			}},
		},
		{
			Name: "cg", Suite: "NPB",
			Desc: "Conjugate Gradient, irregular memory access",
			Kind: hw.KindCPU, PerfUnit: "GFLOP/s", PerfPerUnitRate: 1e-9,
			Phases: []Phase{{
				Name: "spmv", Weight: 1,
				OpsPerUnit: 1, BytesPerUnit: 4.5,
				RandomFrac: 0.20, BandwidthEff: 0.25, ComputeEff: 0.35,
				Overlap: 1.8, ActivityBase: 0.60, StallActivity: 0.38,
			}},
		},
		{
			Name: "ft", Suite: "NPB",
			Desc: "Discrete 3D fast Fourier Transform, compute/memory",
			Kind: hw.KindCPU, PerfUnit: "GFLOP/s", PerfPerUnitRate: 1e-9,
			Phases: []Phase{
				{Name: "fft", Weight: 0.6, OpsPerUnit: 1, BytesPerUnit: 0.25,
					RandomFrac: 0.02, BandwidthEff: 0.68, ComputeEff: 0.58,
					Overlap: 2.5, ActivityBase: 0.80, StallActivity: 0.40},
				{Name: "transpose", Weight: 0.4, OpsPerUnit: 1, BytesPerUnit: 0.90,
					RandomFrac: 0.06, BandwidthEff: 0.55, ComputeEff: 0.45,
					Overlap: 2.0, ActivityBase: 0.62, StallActivity: 0.36},
			},
		},
		{
			Name: "mg", Suite: "NPB",
			Desc: "Multi-Grid operation, compute/memory",
			Kind: hw.KindCPU, PerfUnit: "GFLOP/s", PerfPerUnitRate: 1e-9,
			Phases: []Phase{
				{Name: "residual", Weight: 0.4, OpsPerUnit: 1, BytesPerUnit: 2.8,
					RandomFrac: 0.02, BandwidthEff: 0.72, ComputeEff: 0.42,
					Overlap: 2.4, ActivityBase: 0.62, StallActivity: 0.34},
				{Name: "restrict", Weight: 0.3, OpsPerUnit: 1, BytesPerUnit: 2.2,
					RandomFrac: 0.03, BandwidthEff: 0.68, ComputeEff: 0.44,
					Overlap: 2.4, ActivityBase: 0.64, StallActivity: 0.34},
				{Name: "prolongate", Weight: 0.3, OpsPerUnit: 1, BytesPerUnit: 2.0,
					RandomFrac: 0.04, BandwidthEff: 0.66, ComputeEff: 0.44,
					Overlap: 2.4, ActivityBase: 0.64, StallActivity: 0.34},
			},
		},

		// ----- GPU benchmarks -----
		{
			Name: "sgemm", Suite: "CUDA",
			Desc: "Compute intensive, CUBLAS implementation",
			Kind: hw.KindGPU, PerfUnit: "GFLOP/s", PerfPerUnitRate: 1e-9,
			Phases: []Phase{{
				Name: "gemm", Weight: 1,
				OpsPerUnit: 1, BytesPerUnit: 0.015,
				RandomFrac: 0, BandwidthEff: 0.75, ComputeEff: 0.92,
				Overlap: 4, ActivityBase: 1.0, StallActivity: 0.50,
			}},
		},
		{
			Name: "gpustream", Suite: "CUDA",
			Desc: "Memory intensive, CUDA version of STREAM",
			Kind: hw.KindGPU, PerfUnit: "GB/s", PerfPerUnitRate: 1e-9,
			Phases: []Phase{{
				Name: "triad", Weight: 1,
				OpsPerUnit: 0.02, BytesPerUnit: 1,
				RandomFrac: 0, BandwidthEff: 0.82, ComputeEff: 0.50,
				Overlap: 4, ActivityBase: 0.34, StallActivity: 0.22,
			}},
		},
		{
			Name: "cufft", Suite: "CUDA",
			Desc: "Memory intensive, CUDA example",
			Kind: hw.KindGPU, PerfUnit: "GFLOP/s", PerfPerUnitRate: 1e-9,
			Phases: []Phase{{
				Name: "fft", Weight: 1,
				OpsPerUnit: 1, BytesPerUnit: 1.0,
				RandomFrac: 0.1, BandwidthEff: 0.72, ComputeEff: 0.60,
				Overlap: 3, ActivityBase: 0.52, StallActivity: 0.30,
			}},
		},
		{
			Name: "minife", Suite: "ECP",
			Desc: "Memory intensive, ECP proxy",
			Kind: hw.KindGPU, PerfUnit: "GFLOP/s", PerfPerUnitRate: 1e-9,
			Phases: []Phase{{
				Name: "cg-spmv", Weight: 1,
				OpsPerUnit: 1, BytesPerUnit: 4.0,
				RandomFrac: 0.25, BandwidthEff: 0.68, ComputeEff: 0.40,
				Overlap: 3, ActivityBase: 0.50, StallActivity: 0.30,
			}},
		},
		{
			Name: "cloverleaf", Suite: "ECP",
			Desc: "Compute/memory, ECP proxy",
			Kind: hw.KindGPU, PerfUnit: "GFLOP/s", PerfPerUnitRate: 1e-9,
			Phases: []Phase{{
				Name: "hydro", Weight: 1,
				OpsPerUnit: 1, BytesPerUnit: 1.3,
				RandomFrac: 0.05, BandwidthEff: 0.70, ComputeEff: 0.50,
				Overlap: 2.5, ActivityBase: 0.65, StallActivity: 0.35,
			}},
		},
		{
			Name: "hpcg", Suite: "HPL",
			Desc: "Memory intensive, HPL benchmark",
			Kind: hw.KindGPU, PerfUnit: "GFLOP/s", PerfPerUnitRate: 1e-9,
			Phases: []Phase{{
				Name: "mg-spmv", Weight: 1,
				OpsPerUnit: 1, BytesPerUnit: 4.3,
				RandomFrac: 0.3, BandwidthEff: 0.55, ComputeEff: 0.35,
				Overlap: 2.8, ActivityBase: 0.46, StallActivity: 0.28,
			}},
		},
	}
}
