// Package roofline casts the power-bounded problem in the familiar
// roofline framework: a platform has a compute ceiling (ops/s) and a
// bandwidth ceiling (bytes/s), and a workload's arithmetic intensity
// decides which one binds. Power capping moves both ceilings — the CPU
// cap lowers the compute roof through DVFS, the DRAM cap lowers the
// bandwidth roof through throttling — so a cross-component allocation is
// exactly a choice of roofline shape, and the optimal allocation places
// the ridge point at the workload's intensity.
package roofline

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/rapl"
	"repro/internal/svgplot"
	"repro/internal/units"
	"repro/internal/workload"
)

// Model is a power-capped roofline for one CPU platform.
type Model struct {
	// ComputeRoof is the attainable operation throughput under the
	// processor cap.
	ComputeRoof units.Rate
	// BandwidthRoof is the attainable traffic rate under the memory cap.
	BandwidthRoof units.Bandwidth
	// Ridge is the arithmetic intensity (ops/byte) at which the two
	// ceilings meet; workloads below it are memory bound under this
	// allocation, above it compute bound.
	Ridge float64
	// ProcCap and MemCap record the allocation the model was built for.
	ProcCap, MemCap units.Power
	// Freq and Duty are the processor state the processor cap affords at
	// full activity.
	Freq units.Frequency
	Duty float64
}

// ForCPU builds the power-capped roofline for an allocation on a CPU
// platform, using a generic (fully efficient, streaming) workload — the
// hardware ceilings. Zero caps mean uncapped.
func ForCPU(p hw.Platform, procCap, memCap units.Power) (Model, error) {
	if p.Kind != hw.KindCPU {
		return Model{}, fmt.Errorf("roofline: platform %q is not a CPU platform", p.Name)
	}
	if err := p.Validate(); err != nil {
		return Model{}, err
	}
	ctrl := rapl.NewController(p.CPU, p.DRAM)
	if err := ctrl.SetLimit(rapl.DomainPackage, procCap); err != nil {
		return Model{}, err
	}
	if err := ctrl.SetLimit(rapl.DomainDRAM, memCap); err != nil {
		return Model{}, err
	}
	// The compute roof uses full activity (a compute-bound kernel keeps
	// the cores busy); the actuator picks the state the cap affords.
	state := ctrl.ActuatePackage(1.0)
	compute := p.CPU.PeakComputeRate(state.Freq, state.Duty)
	bw := ctrl.DRAMBandwidthCeiling(0)
	if peak := p.DRAM.PeakBandwidth(); bw > peak {
		bw = peak
	}
	m := Model{
		ComputeRoof:   compute,
		BandwidthRoof: bw,
		ProcCap:       procCap,
		MemCap:        memCap,
		Freq:          state.Freq,
		Duty:          state.Duty,
	}
	if bw > 0 {
		m.Ridge = compute.OpsPerSecond() / bw.BytesPerSecond()
	}
	return m, nil
}

// Attainable returns the roofline bound (ops/s) at arithmetic intensity
// ai: min(ComputeRoof, ai * BandwidthRoof).
func (m Model) Attainable(ai float64) units.Rate {
	if ai <= 0 {
		return 0
	}
	bwBound := units.Rate(ai * m.BandwidthRoof.BytesPerSecond())
	if bwBound < m.ComputeRoof {
		return bwBound
	}
	return m.ComputeRoof
}

// Bound classifies a workload under this roofline.
func (m Model) Bound(w *workload.Workload) string {
	ai := w.ComputeIntensity()
	if ai < m.Ridge {
		return "memory-bound"
	}
	return "compute-bound"
}

// mlpFloor mirrors the simulator's weak frequency dependence of
// achievable bandwidth (see internal/sim).
const mlpFloor = 0.7

// Effective returns the workload-effective roofs under this model: the
// compute roof scaled by the workload's compute efficiency, and the
// bandwidth roof scaled by its pattern efficiency and the processor's
// request-issue capability (duty-gated, weakly frequency dependent).
func (m Model) Effective(p hw.Platform, w *workload.Workload) (units.Rate, units.Bandwidth) {
	var compEff, bwEff float64
	for _, ph := range w.Phases {
		compEff += ph.Weight * ph.ComputeEff
		bwEff += ph.Weight * ph.BandwidthEff
	}
	effCompute := units.Rate(m.ComputeRoof.OpsPerSecond() * compEff)
	fRatio := m.Freq.Hz() / p.CPU.FNom.Hz()
	issue := m.Duty * (mlpFloor + (1-mlpFloor)*fRatio)
	pattern := p.DRAM.PeakBandwidth().BytesPerSecond() * bwEff * issue
	effBW := units.Bandwidth(pattern)
	if m.BandwidthRoof < effBW {
		effBW = m.BandwidthRoof
	}
	return effCompute, effBW
}

// PredictedPerf returns the roofline-predicted operation throughput for
// the workload under this model: min(effective compute roof, intensity
// times effective bandwidth roof).
func (m Model) PredictedPerf(p hw.Platform, w *workload.Workload) units.Rate {
	effCompute, effBW := m.Effective(p, w)
	ai := w.ComputeIntensity()
	bwBound := units.Rate(ai * effBW.BytesPerSecond())
	if bwBound < effCompute {
		return bwBound
	}
	return effCompute
}

// BalancedAllocation searches the budget's allocation space for the split
// that maximizes the roofline-predicted performance at the workload's
// arithmetic intensity — the roofline restatement of the paper's balance
// principle, and an O(budget/step) closed-form allocator that needs no
// simulation runs. It returns the allocation and the resulting model.
func BalancedAllocation(p hw.Platform, w *workload.Workload, budget units.Power, step units.Power) (units.Power, units.Power, Model, error) {
	if step <= 0 {
		step = 4
	}
	best := -1.0
	var bestProc, bestMem units.Power
	var bestModel Model
	lo := p.CPU.IdlePower + 2
	hiMem := p.DRAM.BackgroundPower + 2
	for proc := lo; proc <= budget-hiMem; proc += step {
		mem := budget - proc
		m, err := ForCPU(p, proc, mem)
		if err != nil {
			return 0, 0, Model{}, err
		}
		predicted := m.PredictedPerf(p, w).OpsPerSecond()
		if predicted > best {
			best, bestProc, bestMem, bestModel = predicted, proc, mem, m
		}
	}
	if best < 0 {
		return 0, 0, Model{}, fmt.Errorf("roofline: budget %v leaves no allocation space", budget)
	}
	return bestProc, bestMem, bestModel, nil
}

// Chart renders rooflines for several allocations of one budget with the
// workload's intensity marked, as an SVG.
func Chart(p hw.Platform, w *workload.Workload, budget units.Power, procCaps []units.Power) (svgplot.Chart, error) {
	fig := svgplot.Chart{
		Title:  fmt.Sprintf("Power-capped rooflines: %s at %s on %s", w.Name, budget, p.Name),
		XLabel: "arithmetic intensity (ops/byte, sample points)",
		YLabel: "attainable GOP/s",
	}
	ais := []float64{0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100}
	for _, proc := range procCaps {
		if proc >= budget {
			continue
		}
		m, err := ForCPU(p, proc, budget-proc)
		if err != nil {
			return svgplot.Chart{}, err
		}
		var ys []float64
		for _, ai := range ais {
			ys = append(ys, m.Attainable(ai).OpsPerSecond()/1e9)
		}
		if err := fig.Add(fmt.Sprintf("cpu %.0f W / mem %.0f W", proc.Watts(), (budget-proc).Watts()), ais, ys); err != nil {
			return svgplot.Chart{}, err
		}
	}
	// The workload's intensity as a vertical marker series.
	ai := w.ComputeIntensity()
	maxRoof := 0.0
	for _, s := range fig.Series {
		for _, y := range s.Y {
			if y > maxRoof {
				maxRoof = y
			}
		}
	}
	if err := fig.Add(w.Name+" intensity", []float64{ai, ai}, []float64{0, maxRoof}); err != nil {
		return svgplot.Chart{}, err
	}
	return fig, nil
}
