package roofline

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/units"
	"repro/internal/workload"
)

func ivy(t *testing.T) hw.Platform {
	t.Helper()
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func wl(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestUncappedRoofsMatchHardware(t *testing.T) {
	p := ivy(t)
	m, err := ForCPU(p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.ComputeRoof.GOPSValue()-400) > 1 {
		t.Errorf("compute roof = %v, want ~400 GOP/s", m.ComputeRoof)
	}
	if math.Abs(m.BandwidthRoof.GBPerSecond()-102.4) > 0.5 {
		t.Errorf("bandwidth roof = %v, want ~102.4 GB/s", m.BandwidthRoof)
	}
	// Ridge = 400/102.4 ~ 3.9 ops/byte.
	if m.Ridge < 3.5 || m.Ridge > 4.3 {
		t.Errorf("ridge = %v", m.Ridge)
	}
	if _, err := ForCPU(hw.TitanXP(), 0, 0); err == nil {
		t.Error("GPU platform accepted")
	}
}

func TestCapsMoveTheRoofs(t *testing.T) {
	p := ivy(t)
	free, err := ForCPU(p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cpuCapped, err := ForCPU(p, 90, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cpuCapped.ComputeRoof >= free.ComputeRoof {
		t.Error("CPU cap should lower the compute roof")
	}
	if cpuCapped.BandwidthRoof != free.BandwidthRoof {
		t.Error("CPU cap should not move the bandwidth roof")
	}
	if cpuCapped.Ridge >= free.Ridge {
		t.Error("CPU cap should move the ridge left")
	}
	memCapped, err := ForCPU(p, 0, 90)
	if err != nil {
		t.Fatal(err)
	}
	if memCapped.BandwidthRoof >= free.BandwidthRoof {
		t.Error("memory cap should lower the bandwidth roof")
	}
	if memCapped.Ridge <= free.Ridge {
		t.Error("memory cap should move the ridge right")
	}
}

func TestAttainablePiecewise(t *testing.T) {
	m := Model{ComputeRoof: 100e9, BandwidthRoof: 50e9, Ridge: 2}
	if got := m.Attainable(1); got != 50e9 {
		t.Errorf("below ridge = %v", got)
	}
	if got := m.Attainable(10); got != 100e9 {
		t.Errorf("above ridge = %v", got)
	}
	if got := m.Attainable(2); math.Abs(float64(got)-100e9) > 1 {
		t.Errorf("at ridge = %v", got)
	}
	if m.Attainable(0) != 0 {
		t.Error("zero intensity")
	}
}

func TestBoundClassification(t *testing.T) {
	p := ivy(t)
	m, err := ForCPU(p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	stream := wl(t, "stream")
	dgemm := wl(t, "dgemm")
	if m.Bound(&stream) != "memory-bound" {
		t.Error("STREAM should be memory bound on the uncapped roofline")
	}
	if m.Bound(&dgemm) != "compute-bound" {
		t.Error("DGEMM should be compute bound on the uncapped roofline")
	}
}

func TestBalancedAllocationTracksSweepOptimum(t *testing.T) {
	// The ridge-matching allocation should land near the exhaustive
	// optimum — the roofline restatement of the paper's balance claim.
	p := ivy(t)
	for _, name := range []string{"stream", "mg"} {
		w := wl(t, name)
		budget := units.Power(200)
		proc, mem, m, err := BalancedAllocation(p, &w, budget, 4)
		if err != nil {
			t.Fatal(err)
		}
		if proc+mem > budget+0.01 {
			t.Fatalf("%s: balanced allocation exceeds budget", name)
		}
		if m.Ridge <= 0 {
			t.Fatalf("%s: degenerate ridge", name)
		}
		pb := core.NewProblem(p, w, budget)
		best, err := pb.PerfMax()
		if err != nil {
			t.Fatal(err)
		}
		ev, err := pb.Evaluate(core.Allocation{Proc: proc, Mem: mem})
		if err != nil {
			t.Fatal(err)
		}
		if ev.Result.Perf < 0.7*best.Result.Perf {
			t.Errorf("%s: ridge-matched allocation reaches only %.0f%% of best",
				name, 100*ev.Result.Perf/best.Result.Perf)
		}
	}
	// Infeasible budget errors.
	w := wl(t, "stream")
	if _, _, _, err := BalancedAllocation(p, &w, 60, 4); err == nil {
		t.Error("infeasible budget accepted")
	}
}

func TestChartRendering(t *testing.T) {
	p := ivy(t)
	w := wl(t, "mg")
	fig, err := Chart(p, &w, 208, []units.Power{80, 120, 160})
	if err != nil {
		t.Fatal(err)
	}
	svg := fig.SVG()
	if !strings.Contains(svg, "rooflines") || !strings.Contains(svg, "mg intensity") {
		t.Error("chart missing series")
	}
	// Caps at or above the budget are skipped, not errored.
	fig, err = Chart(p, &w, 208, []units.Power{80, 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 { // one roofline + the intensity marker
		t.Errorf("series = %d, want 2", len(fig.Series))
	}
}
