package faults

import (
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ProxyFate is the chaos proxy's verdict on one request.
type ProxyFate int

// Per-request fates a chaos proxy can draw.
const (
	// ProxyPass: the request reaches the wrapped handler untouched.
	ProxyPass ProxyFate = iota
	// ProxyBusy: the request is refused with an injected 429 and a
	// Retry-After header, as a saturated shard would.
	ProxyBusy
	// ProxyDrop: the connection is severed with no HTTP response — the
	// client sees a transport error, as it would from a crashed shard.
	ProxyDrop
	// ProxyStall: the response stalls (past any reasonable client
	// deadline) and then the connection is severed.
	ProxyStall
)

// ProxySpec declares per-request fault rates for a ChaosProxy. The
// zero value injects nothing. Probabilities must sum to at most 1.
type ProxySpec struct {
	// Busy is the probability of an injected 429 (a 429 storm at 1).
	Busy float64
	// Drop is the probability the connection is severed mid-request.
	Drop float64
	// Stall is the probability the response stalls for StallFor before
	// the connection dies.
	Stall float64
	// StallFor is how long a stalled response hangs. The stall ends
	// early if the client gives up first (request context cancelled).
	StallFor time.Duration
	// RetryAfterSecs is the Retry-After hint attached to injected 429s
	// (0 means 1 second).
	RetryAfterSecs int
}

// ProxyStats counts a proxy's request fates.
type ProxyStats struct {
	// Requests counts every request that reached the proxy; Passed,
	// Busy, Dropped, Stalled, and Killed partition them by fate
	// (Killed are requests severed because the shard was down).
	Requests, Passed, Busy, Dropped, Stalled, Killed uint64
}

// ChaosProxy wraps an http.Handler with seeded, deterministic faults:
// injected 429 storms, severed connections, response stalls, and a
// kill switch for whole-shard death. Fates are drawn from a forked RNG
// stream keyed by the shard name, so two proxies in one topology draw
// decorrelated faults and replaying a seed reproduces every fate in
// arrival order. Determinism is per arrival sequence: drive requests
// sequentially to reproduce a run byte for byte.
type ChaosProxy struct {
	inner http.Handler
	spec  ProxySpec

	mu  sync.Mutex
	rng *RNG

	down atomic.Bool

	requests, passed, busy, dropped, stalled, killed atomic.Uint64
}

// NewChaosProxy wraps inner with the spec's faults, drawing from the
// stream (seed, "proxy/"+shard).
func NewChaosProxy(inner http.Handler, spec ProxySpec, seed uint64, shard string) *ChaosProxy {
	return &ChaosProxy{
		inner: inner,
		spec:  spec,
		rng:   NewRNG(seed).Fork("proxy/" + shard),
	}
}

// Kill takes the shard down: every request is severed with no response
// until Restart. Kill does not consume RNG draws, so a kill schedule
// cannot shift which later requests draw which fates.
func (p *ChaosProxy) Kill() { p.down.Store(true) }

// Restart returns the shard to service.
func (p *ChaosProxy) Restart() { p.down.Store(false) }

// Down reports whether the shard is currently killed.
func (p *ChaosProxy) Down() bool { return p.down.Load() }

// Stats snapshots the proxy's fate counters.
func (p *ChaosProxy) Stats() ProxyStats {
	return ProxyStats{
		Requests: p.requests.Load(),
		Passed:   p.passed.Load(),
		Busy:     p.busy.Load(),
		Dropped:  p.dropped.Load(),
		Stalled:  p.stalled.Load(),
		Killed:   p.killed.Load(),
	}
}

// draw consumes one uniform variate and maps it to a fate.
func (p *ChaosProxy) draw() ProxyFate {
	p.mu.Lock()
	u := p.rng.Float64()
	p.mu.Unlock()
	switch {
	case u < p.spec.Busy:
		return ProxyBusy
	case u < p.spec.Busy+p.spec.Drop:
		return ProxyDrop
	case u < p.spec.Busy+p.spec.Drop+p.spec.Stall:
		return ProxyStall
	default:
		return ProxyPass
	}
}

// ServeHTTP applies the drawn fate. Severed connections use
// http.ErrAbortHandler, which the net/http server translates into an
// aborted response (the client observes EOF / unexpected EOF).
func (p *ChaosProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.requests.Add(1)
	if p.down.Load() {
		p.killed.Add(1)
		panic(http.ErrAbortHandler)
	}
	if p.spec == (ProxySpec{}) {
		p.passed.Add(1)
		p.inner.ServeHTTP(w, r)
		return
	}
	switch p.draw() {
	case ProxyBusy:
		p.busy.Add(1)
		secs := p.spec.RetryAfterSecs
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"injected 429 storm"}` + "\n"))
	case ProxyDrop:
		p.dropped.Add(1)
		panic(http.ErrAbortHandler)
	case ProxyStall:
		p.stalled.Add(1)
		select {
		case <-time.After(p.spec.StallFor):
		case <-r.Context().Done():
		}
		panic(http.ErrAbortHandler)
	default:
		p.passed.Add(1)
		p.inner.ServeHTTP(w, r)
	}
}

// ShardOutage is one kill/restart interval of a shard in a topology,
// measured in the harness's global request sequence numbers: the shard
// goes down just before request At is issued and returns to service
// just before request At+For.
type ShardOutage struct {
	Shard   int
	At, For uint64
}

// ShardKillSchedule derives a deterministic kill/restart schedule for
// a topology of shards over a horizon of requests. Up intervals are
// exponential with mean meanUp requests, outages exponential with mean
// meanDown; each shard draws from its own forked stream, so adding a
// shard does not perturb the others' schedules. A non-positive
// meanDown means killed shards never restart. The schedule is sorted
// by At (ties by shard) for in-order application.
func ShardKillSchedule(seed uint64, shards int, horizon uint64, meanUp, meanDown float64) []ShardOutage {
	var out []ShardOutage
	root := NewRNG(seed)
	for s := 0; s < shards; s++ {
		rng := root.Fork("proxy.kill/" + strconv.Itoa(s))
		t := 0.0
		for {
			t += 1 + rng.Exp(meanUp)
			at := uint64(t)
			if at >= horizon {
				break
			}
			if meanDown <= 0 {
				out = append(out, ShardOutage{Shard: s, At: at, For: horizon - at})
				break
			}
			down := 1 + rng.Exp(meanDown)
			dur := uint64(down)
			if at+dur > horizon {
				dur = horizon - at
			}
			out = append(out, ShardOutage{Shard: s, At: at, For: dur})
			t += down
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}
