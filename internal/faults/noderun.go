package faults

import (
	"fmt"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/rapl"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// GuardTolerance is the documented guard band: the windowed-average node
// power may exceed the bound by at most this much while the resilient
// control path (retry, readback, watchdog) is converging. The faults
// tests assert the invariant against exactly this value.
const GuardTolerance units.Power = 5

// NodeRunResult is the outcome of a resilient node-level run.
type NodeRunResult struct {
	// Elapsed is the wall time the run took; WorkDone the units
	// completed; Rate the average work rate (units/s).
	Elapsed  time.Duration
	WorkDone float64
	Rate     float64
	// PeakWindowAvg is the highest running-average total power seen.
	PeakWindowAvg units.Power
	// WorstOvershoot is the largest excess of the window average over
	// the bound in force at the time (shocked bounds included).
	WorstOvershoot units.Power
	// OvershootTime is the total time the window average spent above
	// bound + GuardTolerance.
	OvershootTime time.Duration
	// SensorDrops counts dropped sensor samples; SensorReads the total
	// attempts.
	SensorReads, SensorDrops int
	// Retry is the resilient controller's counters.
	Retry rapl.RetryStats
	// CapWrites, CapFailed, CapStuck are the injector-side actuator
	// counters (the ground truth the retry layer fought against).
	CapWrites, CapFailed, CapStuck int
	// WatchdogEngagements counts failsafe activations.
	WatchdogEngagements int
	// Shocks counts budget shocks applied during the run.
	Shocks int
}

// nodeRunMaxSteps bounds the control loop against hostile specs.
const nodeRunMaxSteps = 2_000_000

// RunNode executes totalUnits of workload w on CPU platform p under node
// power bound, stepping a resilient RAPL control loop every dt while inj
// disturbs it: sensor readings are dropped or noised, cap writes fail or
// stick, and facility shocks lower the bound mid-run. The control path
// is the stacking the package documents:
//
//	coord split -> resilient controller (retry+readback) -> faulty actuator -> RAPL
//	sensor -> (dropout/noise) -> watchdog -> failsafe clamp
//
// Every step re-asserts the desired caps, so stuck or failed writes are
// re-driven until the actuator takes them; sustained overshoot trips the
// watchdog onto the precomputed failsafe split. Transitions are recorded
// into log (nil is fine). The run is a pure function of its arguments:
// identical inputs give identical results.
func RunNode(p hw.Platform, w workload.Workload, bound units.Power, totalUnits float64,
	dt time.Duration, inj *Injector, log *trace.EventLog) (NodeRunResult, error) {

	var res NodeRunResult
	if p.Kind != hw.KindCPU {
		return res, fmt.Errorf("faults: platform %q is not a CPU platform", p.Name)
	}
	if totalUnits <= 0 {
		return res, fmt.Errorf("faults: non-positive work amount %v", totalUnits)
	}
	if dt <= 0 {
		return res, fmt.Errorf("faults: non-positive time step %v", dt)
	}
	prof, err := profile.ProfileCPU(p, w)
	if err != nil {
		return res, err
	}

	// Control stack.
	ctrl := rapl.NewController(p.CPU, p.DRAM)
	faulty := NewFaultyController(ctrl, inj)
	seed := uint64(0)
	if inj != nil {
		seed = inj.Seed()
	}
	resilient := rapl.NewResilient(faulty, rapl.DefaultRetryPolicy(seed))
	failsafe := rapl.PrecomputeFailsafe(p.CPU, p.DRAM, bound)
	wd := rapl.NewWatchdog(resilient, bound, GuardTolerance, failsafe)
	window := rapl.NewWindow(time.Second)

	// split picks the desired allocation for a bound: COORD when the
	// budget is productive, memory-first when it is tight, failsafe when
	// even that rejects.
	split := func(b units.Power) core.Allocation {
		if d := coord.CPU(prof, b); d.Status != coord.StatusTooSmall {
			return d.Alloc
		}
		if d := coord.MemoryFirst(prof, b); d.Status != coord.StatusTooSmall {
			return d.Alloc
		}
		fs := rapl.PrecomputeFailsafe(p.CPU, p.DRAM, b)
		return core.Allocation{Proc: fs.Proc, Mem: fs.Mem}
	}

	// Shock schedule over a generous horizon (4x a pessimistic runtime
	// guess); shocks past the actual finish never fire.
	horizonGuess := 4 * 3600.0
	shocks := inj.BudgetShocks(horizonGuess)

	boundNow := bound
	desired := split(bound)
	// program re-asserts desired caps on domains whose effective value
	// drifted; failures are tolerated (re-driven next step).
	program := func() {
		target := desired
		if wd.Engaged() {
			target = core.Allocation{Proc: wd.Failsafe.Proc, Mem: wd.Failsafe.Mem}
		}
		for _, dom := range []struct {
			d   rapl.Domain
			cap units.Power
		}{{rapl.DomainPackage, target.Proc}, {rapl.DomainDRAM, target.Mem}} {
			got, enabled := ctrl.Limit(dom.d)
			if enabled && (got-dom.cap).Watts() < rapl.PowerUnit && (dom.cap-got).Watts() < rapl.PowerUnit {
				continue
			}
			// Errors are absorbed: the next step retries, and the
			// watchdog covers the window in between.
			_ = resilient.SetLimit(dom.d, dom.cap)
		}
	}
	program()

	// Solved operating points per (phase, effective caps) pair.
	type opKey struct {
		phase     int
		proc, mem int64 // caps in PowerUnit quanta
	}
	type opVal struct {
		rate  float64
		power units.Power
	}
	cache := map[opKey]opVal{}
	solve := func(phaseIdx int) (opVal, error) {
		procEff, pOK := ctrl.Limit(rapl.DomainPackage)
		memEff, mOK := ctrl.Limit(rapl.DomainDRAM)
		if !pOK {
			procEff = 0
		}
		if !mOK {
			memEff = 0
		}
		key := opKey{
			phase: phaseIdx,
			proc:  int64(procEff.Watts() / rapl.PowerUnit),
			mem:   int64(memEff.Watts() / rapl.PowerUnit),
		}
		if v, ok := cache[key]; ok {
			return v, nil
		}
		pw := singlePhase(&w, phaseIdx)
		r, err := sim.RunCPU(p, &pw, procEff, memEff)
		if err != nil {
			return opVal{}, err
		}
		v := opVal{rate: r.UnitRate.OpsPerSecond(), power: r.ProcPower + r.MemPower}
		cache[key] = v
		return v, nil
	}

	shockIdx := 0
	shockUntil := -1.0
	elapsed := time.Duration(0)
	for phaseIdx := range w.Phases {
		unitsLeft := w.Phases[phaseIdx].Weight * totalUnits
		for steps := 0; unitsLeft > 1e-12; steps++ {
			if steps >= nodeRunMaxSteps {
				return res, fmt.Errorf("faults: node run exceeded %d steps in phase %q", nodeRunMaxSteps, w.Phases[phaseIdx].Name)
			}
			nowSec := elapsed.Seconds()

			// Budget shock edges.
			if shockUntil >= 0 && nowSec >= shockUntil {
				shockUntil = -1
				boundNow = bound
				desired = split(boundNow)
				wd.Bound = boundNow
				log.Recordf(nowSec, "budget-restore", "node", "bound back to %v", boundNow)
			}
			if shockIdx < len(shocks) && nowSec >= shocks[shockIdx].At {
				sh := shocks[shockIdx]
				shockIdx++
				shockUntil = sh.At + sh.Duration
				boundNow = units.Power(bound.Watts() * (1 - sh.Frac))
				desired = split(boundNow)
				wd.Bound = boundNow
				res.Shocks++
				mNodeShocks.Inc()
				log.Recordf(nowSec, "budget-shock", "node", "bound dropped to %v", boundNow)
			}

			program()
			op, err := solve(phaseIdx)
			if err != nil {
				return res, err
			}
			if op.rate <= 0 {
				return res, fmt.Errorf("faults: phase %q made no progress", w.Phases[phaseIdx].Name)
			}

			stepDt := dt
			stepUnits := op.rate * dt.Seconds()
			if stepUnits > unitsLeft {
				stepDt = time.Duration(float64(time.Second) * unitsLeft / op.rate)
				if stepDt <= 0 {
					stepDt = time.Nanosecond
				}
				stepUnits = unitsLeft
			}
			unitsLeft -= stepUnits
			res.WorkDone += stepUnits
			elapsed += stepDt
			window.Add(op.power, stepDt)

			avg := window.Average()
			if avg > res.PeakWindowAvg {
				res.PeakWindowAvg = avg
			}
			if over := avg - boundNow; over > res.WorstOvershoot {
				res.WorstOvershoot = over
			}
			if avg > boundNow+GuardTolerance {
				res.OvershootTime += stepDt
			}

			// Sensor -> watchdog.
			res.SensorReads++
			mSensorReads.Inc()
			engagedBefore := wd.Engaged()
			if reading, ok := inj.SensorRead(avg); ok {
				if _, err := wd.Observe(reading); err != nil {
					log.Recordf(elapsed.Seconds(), "watchdog-error", "node", "%v", err)
				}
			} else {
				res.SensorDrops++
				mSensorDrops.Inc()
			}
			if wd.Engaged() != engagedBefore {
				if wd.Engaged() {
					log.Recordf(elapsed.Seconds(), "watchdog-engage", "node",
						"clamped to failsafe %v", wd.Failsafe.Total())
				} else {
					log.Record(elapsed.Seconds(), "watchdog-release", "node", "bound respected again")
				}
				program()
			}
		}
	}

	res.Elapsed = elapsed
	if sec := elapsed.Seconds(); sec > 0 {
		res.Rate = res.WorkDone / sec
	}
	res.Retry = resilient.Stats()
	res.CapWrites, res.CapFailed, res.CapStuck = faulty.Writes, faulty.Failed, faulty.Stuck
	res.WatchdogEngagements = wd.Engagements
	return res, nil
}

// singlePhase wraps phase i of w as a standalone workload.
func singlePhase(w *workload.Workload, i int) workload.Workload {
	ph := w.Phases[i]
	ph.Weight = 1
	return workload.Workload{
		Name:            fmt.Sprintf("%s/%s", w.Name, ph.Name),
		Suite:           w.Suite,
		Desc:            w.Desc,
		Kind:            w.Kind,
		PerfUnit:        w.PerfUnit,
		PerfPerUnitRate: w.PerfPerUnitRate,
		Phases:          []workload.Phase{ph},
	}
}
