package faults

import (
	"math"
	"testing"
)

// TestGeometricDistribution is a property test over the geometric
// sampler: every draw is >= 1, the sample mean converges to the
// requested mean, and the tail mass P(X > mean) matches the closed
// form (1-1/mean)^mean. Tolerances are set at ~5 standard errors so
// the test is deterministic in practice for the pinned seeds.
func TestGeometricDistribution(t *testing.T) {
	const n = 100_000
	for _, mean := range []float64{1.5, 2, 5, 20} {
		for _, seed := range []uint64{1, 7, 42} {
			r := NewRNG(seed)
			var sum float64
			tail := 0
			k := int(mean)
			for i := 0; i < n; i++ {
				v := r.Geometric(mean)
				if v < 1 {
					t.Fatalf("mean %g seed %d: Geometric = %d, want >= 1", mean, seed, v)
				}
				sum += float64(v)
				if v > k {
					tail++
				}
			}
			got := sum / n
			// Geometric sd is sqrt(1-p)/p < mean, so 5 standard errors of
			// the sample mean is under 5*mean/sqrt(n).
			if tol := 5 * mean / math.Sqrt(n); math.Abs(got-mean) > tol {
				t.Errorf("mean %g seed %d: sample mean %.4f, want within %.4f", mean, seed, got, tol)
			}
			p := 1 / mean
			wantTail := math.Pow(1-p, float64(k))
			gotTail := float64(tail) / n
			if tol := 5 * math.Sqrt(wantTail*(1-wantTail)/n); math.Abs(gotTail-wantTail) > tol {
				t.Errorf("mean %g seed %d: P(X>%d) = %.4f, want %.4f +/- %.4f",
					mean, seed, k, gotTail, wantTail, tol)
			}
		}
	}
}

// TestGeometricDegenerate pins the mean <= 1 contract: always exactly
// 1, with zero uniforms consumed, so replays that toggle burst sizes
// across the threshold do not shift later draws.
func TestGeometricDegenerate(t *testing.T) {
	for _, mean := range []float64{-3, 0, 0.5, 1} {
		r := NewRNG(11)
		if v := r.Geometric(mean); v != 1 {
			t.Fatalf("Geometric(%g) = %d, want 1", mean, v)
		}
		if got, want := r.Uint64(), NewRNG(11).Uint64(); got != want {
			t.Fatalf("Geometric(%g) consumed a uniform: next draw %x, want %x", mean, got, want)
		}
	}
}

// TestGeometricDrawCount: a non-degenerate draw consumes exactly one
// uniform, the documented invariant that keeps forked streams' draw
// counts predictable for replay.
func TestGeometricDrawCount(t *testing.T) {
	for _, mean := range []float64{1.0001, 2, 100} {
		ref, gen := NewRNG(23), NewRNG(23)
		ref.Float64() // exactly one uniform
		gen.Geometric(mean)
		for i := 0; i < 10; i++ {
			if ref.Uint64() != gen.Uint64() {
				t.Fatalf("Geometric(%g) did not consume exactly one uniform", mean)
			}
		}
	}
}

// TestForkStreamIndependence is the cross-stream isolation property:
// forking and draining a child never advances the parent, sibling
// streams are decorrelated, and a label's stream is a pure function of
// (construction seed, label) — immune to any interleaving of draws on
// the parent or on sibling forks.
func TestForkStreamIndependence(t *testing.T) {
	// Child draws do not advance the parent.
	plain, forked := NewRNG(5), NewRNG(5)
	child := forked.Fork("burst")
	for i := 0; i < 100; i++ {
		child.Uint64()
	}
	for i := 0; i < 100; i++ {
		if plain.Uint64() != forked.Uint64() {
			t.Fatal("draining a fork advanced the parent stream")
		}
	}

	// A label's stream is identical however the parent and siblings are
	// used in between.
	quiet := NewRNG(5).Fork("shock")
	busyParent := NewRNG(5)
	busyParent.Norm()
	sibling := busyParent.Fork("node.0")
	sibling.Geometric(4)
	busyParent.Exp(10)
	noisy := busyParent.Fork("shock")
	for i := 0; i < 100; i++ {
		if quiet.Uint64() != noisy.Uint64() {
			t.Fatal("fork stream depends on parent/sibling draw interleaving")
		}
	}

	// Sibling labels are decorrelated: over 64-bit draws any collision
	// is overwhelming evidence of correlation.
	a, b := NewRNG(5).Fork("node.0"), NewRNG(5).Fork("node.1")
	bits := 0
	for i := 0; i < 1000; i++ {
		av, bv := a.Uint64(), b.Uint64()
		if av == bv {
			t.Fatal("sibling streams collided")
		}
		bits += popcount64(av ^ bv)
	}
	// Independent streams differ in ~32 of 64 bits per draw; 1000 draws
	// concentrate the average tightly around 32.
	if avg := float64(bits) / 1000; avg < 30 || avg > 34 {
		t.Errorf("average Hamming distance %.2f bits, want ~32 (decorrelated)", avg)
	}
}

func popcount64(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
