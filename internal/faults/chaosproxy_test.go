package faults

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func drawFates(t *testing.T, seed uint64, shard string, n int) []ProxyFate {
	t.Helper()
	p := NewChaosProxy(http.NotFoundHandler(), ProxySpec{Busy: 0.2, Drop: 0.2, Stall: 0.1, StallFor: time.Millisecond}, seed, shard)
	fates := make([]ProxyFate, n)
	for i := range fates {
		fates[i] = p.draw()
	}
	return fates
}

func TestChaosProxyFatesDeterministic(t *testing.T) {
	a := drawFates(t, 42, "0", 200)
	b := drawFates(t, 42, "0", 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fate %d differs across identical seeds: %v vs %v", i, a[i], b[i])
		}
	}
	c := drawFates(t, 43, "0", 200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical fate sequences")
	}
}

func TestChaosProxyShardStreamsDecorrelated(t *testing.T) {
	a := drawFates(t, 42, "0", 200)
	b := drawFates(t, 42, "1", 200)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("shards 0 and 1 drew identical fate sequences from one seed")
	}
}

func TestChaosProxyKillSeversWithoutConsumingDraws(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	p := NewChaosProxy(inner, ProxySpec{Busy: 1}, 7, "0")
	srv := httptest.NewServer(p)
	defer srv.Close()

	p.Kill()
	if _, err := http.Get(srv.URL); err == nil {
		t.Fatal("expected transport error from killed shard, got response")
	}
	p.Restart()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("after restart: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("Busy=1 spec: got status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	st := p.Stats()
	if st.Killed != 1 || st.Busy != 1 || st.Requests != 2 {
		t.Fatalf("stats = %+v, want Killed=1 Busy=1 Requests=2", st)
	}
}

func TestChaosProxyZeroSpecPassesThrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	srv := httptest.NewServer(NewChaosProxy(inner, ProxySpec{}, 1, "0"))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || string(body) != "ok" {
		t.Fatalf("got %d %q, want 200 \"ok\"", resp.StatusCode, body)
	}
}

func TestShardKillScheduleDeterministicAndSorted(t *testing.T) {
	a := ShardKillSchedule(42, 3, 1000, 100, 20)
	b := ShardKillSchedule(42, 3, 1000, 100, 20)
	if len(a) == 0 {
		t.Fatal("expected at least one outage over a 1000-request horizon with mean up 100")
	}
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outage %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("schedule not sorted at %d: %+v before %+v", i, a[i-1], a[i])
		}
	}
	for _, o := range a {
		if o.At+o.For > 1000 {
			t.Fatalf("outage %+v exceeds horizon", o)
		}
		if o.For == 0 {
			t.Fatalf("outage %+v has zero duration", o)
		}
	}
}

func TestShardKillScheduleExtraShardDoesNotPerturb(t *testing.T) {
	three := ShardKillSchedule(42, 3, 1000, 100, 20)
	four := ShardKillSchedule(42, 4, 1000, 100, 20)
	pick := func(sched []ShardOutage, shard int) []ShardOutage {
		var out []ShardOutage
		for _, o := range sched {
			if o.Shard == shard {
				out = append(out, o)
			}
		}
		return out
	}
	for s := 0; s < 3; s++ {
		a, b := pick(three, s), pick(four, s)
		if len(a) != len(b) {
			t.Fatalf("shard %d schedule length changed when adding a shard: %d vs %d", s, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("shard %d outage %d changed when adding a shard: %+v vs %+v", s, i, a[i], b[i])
			}
		}
	}
}
