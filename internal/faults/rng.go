package faults

import "math"

// RNG is a splitmix64 pseudo-random generator. The generator is written
// out here rather than borrowed from math/rand so that fault replays are
// byte-for-byte reproducible across Go releases: the paper's budget
// invariant is only testable under faults if the faults themselves never
// move between runs.
type RNG struct {
	seed  uint64 // the construction seed, immutable; Fork derives from it
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{seed: seed, state: seed}
}

// Uint64 advances the splitmix64 state and returns the next value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform variate in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high bits give the full float64 mantissa resolution.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponential variate with the given mean. Non-positive
// means return +Inf (the event never happens).
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return math.Inf(1)
	}
	u := r.Float64()
	// 1-u is in (0, 1], so the log is finite.
	return -mean * math.Log(1-u)
}

// Geometric returns a geometric variate with the given mean, as a
// count ≥ 1 (number of trials to the first success). A mean at or
// below 1 always returns 1 — the degenerate "no burst" case. The draw
// consumes exactly one uniform, keeping forked streams' draw counts
// predictable for replay.
func (r *RNG) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	// Success probability p = 1/mean; invert the geometric CDF.
	p := 1 / mean
	u := r.Float64()
	n := 1 + int(math.Floor(math.Log(1-u)/math.Log(1-p)))
	if n < 1 {
		return 1
	}
	return n
}

// Norm returns a standard normal variate (Box-Muller, one half used, the
// other discarded to keep the draw count predictable).
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	// Guard u1 = 0.
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// fnv1a hashes a label to a 64-bit value, for deriving stream seeds.
func fnv1a(s string) uint64 {
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001B3
	}
	return h
}

// Fork derives an independent generator keyed by label. Streams forked
// from the same seed with the same label are identical regardless of how
// many draws the parent has made; streams with different labels are
// decorrelated. Forking keys every fault class (and every node) to its
// own stream, so the order in which the simulation happens to consume
// draws cannot shift faults between components.
func (r *RNG) Fork(label string) *RNG {
	return NewRNG(r.seed ^ fnv1a(label) ^ 0xD6E8FEB86659FD93)
}
