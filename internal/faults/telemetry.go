package faults

import "repro/internal/telemetry"

// Node-run instrument handles; nil (no-op) until Instrument is called.
var (
	mSensorReads *telemetry.Counter
	mSensorDrops *telemetry.Counter
	mNodeShocks  *telemetry.Counter
)

// Instrument registers the fault-injection metrics on r and activates
// the node-run counters. Passing nil disables them. Call before running
// node loops concurrently.
func Instrument(r *telemetry.Registry) {
	mSensorReads = r.Counter("faults_sensor_reads_total",
		"Sensor read attempts in resilient node runs.")
	mSensorDrops = r.Counter("faults_sensor_drops_total",
		"Sensor readings dropped by the injector.")
	mNodeShocks = r.Counter("faults_budget_shocks_total",
		"Budget shocks applied to node bounds during runs.")
}
