package faults

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/rapl"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestParseSpec(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    Spec
		wantErr string
	}{
		{name: "empty is zero spec", in: "", want: Spec{}},
		{name: "blank is zero spec", in: "   ", want: Spec{}},
		{
			name: "full spec",
			in:   "sensor.drop=0.1,sensor.noise=0.05,cap.fail=0.2,cap.stuck=0.1,node.mtbf=400,node.mttr=60,shock.mtbs=900,shock.frac=0.25,shock.len=30",
			want: Spec{
				SensorDrop: 0.1, SensorNoise: 0.05, CapFail: 0.2, CapStuck: 0.1,
				NodeMTBF: 400, NodeMTTR: 60, ShockMTBS: 900, ShockFrac: 0.25, ShockLen: 30,
			},
		},
		{
			name: "spaces tolerated",
			in:   " cap.fail = 0.5 , node.mtbf = 100 ",
			want: Spec{CapFail: 0.5, NodeMTBF: 100},
		},
		{name: "unknown key", in: "cap.explode=1", wantErr: "unknown key"},
		{name: "duplicate key", in: "cap.fail=0.1,cap.fail=0.2", wantErr: "duplicate"},
		{name: "missing value", in: "cap.fail", wantErr: "not key=value"},
		{name: "empty entry", in: "cap.fail=0.1,,node.mtbf=5", wantErr: "empty entry"},
		{name: "bad number", in: "cap.fail=lots", wantErr: "bad value"},
		{name: "probability above one", in: "cap.fail=1.5", wantErr: "outside [0, 1]"},
		{name: "negative mean", in: "node.mtbf=-5", wantErr: "negative"},
		{name: "noise above one", in: "sensor.noise=2", wantErr: "above 1"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseSpec(tc.in)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("ParseSpec(%q) err = %v, want containing %q", tc.in, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseSpec(%q): %v", tc.in, err)
			}
			if got != tc.want {
				t.Fatalf("ParseSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
			}
		})
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	specs := []Spec{
		{},
		{SensorDrop: 0.1},
		{SensorDrop: 0.05, SensorNoise: 0.02, CapFail: 0.125, CapStuck: 0.0625,
			NodeMTBF: 333, NodeMTTR: 45.5, ShockMTBS: 1200, ShockFrac: 0.3, ShockLen: 17},
	}
	for _, sp := range specs {
		s := sp.String()
		back, err := ParseSpec(strings.ReplaceAll(s, "none", ""))
		if err != nil {
			t.Fatalf("re-parse %q: %v", s, err)
		}
		if back != sp {
			t.Fatalf("round trip %+v -> %q -> %+v", sp, s, back)
		}
	}
	if (Spec{}).String() != "none" {
		t.Fatalf("zero spec renders %q, want none", (Spec{}).String())
	}
}

func TestSpecScale(t *testing.T) {
	sp := Spec{SensorDrop: 0.4, CapFail: 0.6, CapStuck: 0.3, NodeMTBF: 100, NodeMTTR: 60,
		ShockMTBS: 500, ShockFrac: 0.25, ShockLen: 30}
	z := sp.Scale(0)
	if !z.Zero() {
		// Severities survive scaling but a zero-frequency spec must be
		// inert: no probabilities, no failure processes.
		if z.SensorDrop != 0 || z.CapFail != 0 || z.CapStuck != 0 || z.NodeMTBF != 0 || z.ShockMTBS != 0 {
			t.Fatalf("Scale(0) left frequencies live: %+v", z)
		}
	}
	d := sp.Scale(2)
	if d.CapFail != 1 {
		t.Fatalf("Scale(2) CapFail = %v, want clamped to 1", d.CapFail)
	}
	if d.SensorDrop != 0.8 || d.NodeMTBF != 50 || d.ShockMTBS != 250 {
		t.Fatalf("Scale(2) = %+v", d)
	}
	if d.NodeMTTR != 60 || d.ShockFrac != 0.25 || d.ShockLen != 30 {
		t.Fatalf("Scale(2) changed severities: %+v", d)
	}
}

func TestRNGDeterminismAndForking(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
	// Forks depend only on (seed, label), not on parent draw position.
	fresh := NewRNG(7).Fork("x")
	drained := NewRNG(7)
	for i := 0; i < 50; i++ {
		drained.Uint64()
	}
	late := drained.Fork("x")
	for i := 0; i < 100; i++ {
		if fresh.Uint64() != late.Uint64() {
			t.Fatal("fork stream depends on parent draw position")
		}
	}
	// Different labels decorrelate.
	x, y := NewRNG(7).Fork("x"), NewRNG(7).Fork("y")
	same := 0
	for i := 0; i < 100; i++ {
		if x.Uint64() == y.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws across labels", same)
	}
	// Float64 in [0,1); Exp of non-positive mean is +Inf.
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v outside [0,1)", f)
		}
	}
	if e := r.Exp(0); !math.IsInf(e, 1) {
		t.Fatalf("Exp(0) = %v, want +Inf", e)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	spec := Spec{SensorDrop: 0.2, SensorNoise: 0.1, CapFail: 0.3, CapStuck: 0.2,
		NodeMTBF: 300, NodeMTTR: 60, ShockMTBS: 500, ShockFrac: 0.2, ShockLen: 30}
	a, b := NewInjector(spec, 42), NewInjector(spec, 42)
	for i := 0; i < 200; i++ {
		av, aok := a.SensorRead(100)
		bv, bok := b.SensorRead(100)
		if av != bv || aok != bok {
			t.Fatalf("sensor draw %d diverged: (%v,%v) vs (%v,%v)", i, av, aok, bv, bok)
		}
		if a.CapAttempt() != b.CapAttempt() {
			t.Fatalf("cap draw %d diverged", i)
		}
	}
	// Per-node outage schedules are functions of (spec, seed, nodeID)
	// alone: draining other streams must not move them.
	fresh := NewInjector(spec, 42)
	o1 := fresh.NodeOutages("n3", 1e5)
	o2 := a.NodeOutages("n3", 1e5) // a has consumed many sensor/cap draws
	if len(o1) == 0 {
		t.Fatal("no outages over a 1e5 s horizon with MTBF 300")
	}
	if len(o1) != len(o2) {
		t.Fatalf("outage schedule length diverged: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("outage %d diverged: %+v vs %+v", i, o1[i], o2[i])
		}
	}
	// Different nodes get different schedules.
	o3 := fresh.NodeOutages("n4", 1e5)
	if len(o3) == len(o1) {
		identical := true
		for i := range o1 {
			if o1[i] != o3[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("two nodes share an outage schedule")
		}
	}
	// Shocks respect non-overlap and ordering.
	sh := fresh.BudgetShocks(1e5)
	for i := 1; i < len(sh); i++ {
		if sh[i].At < sh[i-1].At+sh[i-1].Duration {
			t.Fatalf("shocks %d and %d overlap", i-1, i)
		}
	}
	// Different seeds give different fault sequences.
	s42, s43 := NewInjector(spec, 42), NewInjector(spec, 43)
	diverged := false
	for i := 0; i < 50; i++ {
		av, aok := s42.SensorRead(100)
		cv, cok := s43.SensorRead(100)
		if av != cv || aok != cok {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 produced identical sensor streams")
	}
}

func TestInjectorNilSafe(t *testing.T) {
	var in *Injector
	if v, ok := in.SensorRead(100); !ok || v != 100 {
		t.Fatalf("nil SensorRead = (%v, %v), want passthrough", v, ok)
	}
	if in.CapAttempt() != CapOK {
		t.Fatal("nil CapAttempt is not CapOK")
	}
	if in.NodeOutages("n", 1e4) != nil {
		t.Fatal("nil injector produced outages")
	}
	if in.BudgetShocks(1e4) != nil {
		t.Fatal("nil injector produced shocks")
	}
}

func TestZeroSpecInjectsNothing(t *testing.T) {
	in := NewInjector(Spec{}, 9)
	for i := 0; i < 100; i++ {
		if v, ok := in.SensorRead(123); !ok || v != 123 {
			t.Fatalf("zero spec perturbed sensor: (%v, %v)", v, ok)
		}
		if in.CapAttempt() != CapOK {
			t.Fatal("zero spec faulted a cap write")
		}
	}
	if in.NodeOutages("n", 1e6) != nil || in.BudgetShocks(1e6) != nil {
		t.Fatal("zero spec scheduled outages or shocks")
	}
}

func TestFaultyControllerFates(t *testing.T) {
	p := hw.IvyBridge()
	ctrl := rapl.NewController(p.CPU, p.DRAM)
	// High rates so all three fates occur quickly.
	in := NewInjector(Spec{CapFail: 0.4, CapStuck: 0.3}, 5)
	fc := NewFaultyController(ctrl, in)
	var sawErr, sawStuck, sawOK bool
	for i := 0; i < 200; i++ {
		before, beforeOK := ctrl.Limit(rapl.DomainPackage)
		want := units.Power(100 + i%40)
		err := fc.SetLimit(rapl.DomainPackage, want)
		after, afterOK := ctrl.Limit(rapl.DomainPackage)
		switch {
		case err != nil:
			sawErr = true
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected failure %v does not wrap ErrInjected", err)
			}
			if after != before || afterOK != beforeOK {
				t.Fatal("failed write still reached the controller")
			}
		case afterOK && (after-want).Watts() < rapl.PowerUnit && (want-after).Watts() < rapl.PowerUnit:
			sawOK = true
		default:
			sawStuck = true
			if after != before || afterOK != beforeOK {
				t.Fatal("stuck write altered the controller")
			}
		}
	}
	if !sawErr || !sawStuck || !sawOK {
		t.Fatalf("fates not all exercised: err=%v stuck=%v ok=%v", sawErr, sawStuck, sawOK)
	}
	if fc.Writes != 200 || fc.Failed == 0 || fc.Stuck == 0 {
		t.Fatalf("counters: %d writes, %d failed, %d stuck", fc.Writes, fc.Failed, fc.Stuck)
	}
}

func TestResilientDefeatsFaultyActuator(t *testing.T) {
	// The intended stacking: retry + readback above the faulty actuator
	// should land virtually every write despite 30% failures and 20%
	// stuck writes per attempt.
	p := hw.IvyBridge()
	ctrl := rapl.NewController(p.CPU, p.DRAM)
	in := NewInjector(Spec{CapFail: 0.3, CapStuck: 0.2}, 11)
	fc := NewFaultyController(ctrl, in)
	r := rapl.NewResilient(fc, rapl.DefaultRetryPolicy(11))
	landed := 0
	for i := 0; i < 100; i++ {
		want := units.Power(80 + i)
		if err := r.SetLimit(rapl.DomainPackage, want); err != nil {
			continue
		}
		got, ok := ctrl.Limit(rapl.DomainPackage)
		if !ok || (got-want).Watts() >= rapl.PowerUnit || (want-got).Watts() >= rapl.PowerUnit {
			t.Fatalf("write %d reported success but limit is %v (want %v)", i, got, want)
		}
		landed++
	}
	// With 5 attempts per write, the per-write failure probability is
	// (0.3+0.2 stuck-and-caught... ) — in practice nearly all land.
	if landed < 95 {
		t.Fatalf("only %d/100 writes landed through the resilient layer", landed)
	}
	stats := r.Stats()
	if stats.Retries == 0 || stats.ReadbackMismatches == 0 {
		t.Fatalf("faults never exercised the retry path: %+v", stats)
	}
}

func runNodeFixture(t *testing.T) (hw.Platform, workload.Workload) {
	t.Helper()
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByName("stream")
	if err != nil {
		t.Fatal(err)
	}
	return p, w
}

func TestRunNodeFaultFree(t *testing.T) {
	p, w := runNodeFixture(t)
	res, err := RunNode(p, w, 208, 1e12, 250*time.Millisecond, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkDone < 1e12*(1-1e-9) {
		t.Fatalf("work done %v of 1e12", res.WorkDone)
	}
	if res.Rate <= 0 {
		t.Fatal("no progress")
	}
	if res.WorstOvershoot > 0 {
		t.Fatalf("fault-free overshoot %v", res.WorstOvershoot)
	}
	if res.SensorDrops != 0 || res.WatchdogEngagements != 0 || res.Shocks != 0 {
		t.Fatalf("fault-free run reported faults: %+v", res)
	}
}

func TestRunNodeBudgetInvariantUnderActuatorFaults(t *testing.T) {
	// The acceptance invariant: with failing and stuck cap writes plus a
	// lossy noisy sensor — but a steady bound — the windowed node power
	// never exceeds the bound by more than the documented guard band.
	p, w := runNodeFixture(t)
	spec := Spec{SensorDrop: 0.2, SensorNoise: 0.05, CapFail: 0.3, CapStuck: 0.2}
	in := NewInjector(spec, 17)
	log := &trace.EventLog{}
	res, err := RunNode(p, w, 208, 1e12, 250*time.Millisecond, in, log)
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkDone < 1e12*(1-1e-9) {
		t.Fatalf("work done %v of 1e12", res.WorkDone)
	}
	if res.WorstOvershoot > GuardTolerance {
		t.Fatalf("overshoot %v exceeds guard tolerance %v", res.WorstOvershoot, GuardTolerance)
	}
	if res.OvershootTime != 0 {
		t.Fatalf("window average above bound+tolerance for %v", res.OvershootTime)
	}
	if res.CapFailed == 0 && res.CapStuck == 0 {
		t.Fatal("spec injected no actuator faults — test proves nothing")
	}
	if res.SensorDrops == 0 {
		t.Fatal("spec dropped no sensor samples — test proves nothing")
	}
}

func TestRunNodeDeterministicReplay(t *testing.T) {
	p, w := runNodeFixture(t)
	spec := Spec{SensorDrop: 0.1, SensorNoise: 0.05, CapFail: 0.2, CapStuck: 0.1,
		ShockMTBS: 20, ShockFrac: 0.2, ShockLen: 5}
	run := func() (NodeRunResult, string) {
		log := &trace.EventLog{}
		res, err := RunNode(p, w, 208, 1e12, 250*time.Millisecond, NewInjector(spec, 99), log)
		if err != nil {
			t.Fatal(err)
		}
		return res, log.String()
	}
	r1, l1 := run()
	r2, l2 := run()
	if r1 != r2 {
		t.Fatalf("results diverged:\n%+v\n%+v", r1, r2)
	}
	if l1 != l2 {
		t.Fatalf("event logs diverged:\n%s\nvs\n%s", l1, l2)
	}
	// A different seed gives a different fault history.
	log3 := &trace.EventLog{}
	r3, err := RunNode(p, w, 208, 1e12, 250*time.Millisecond, NewInjector(spec, 100), log3)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r3 {
		t.Fatal("seeds 99 and 100 produced identical runs")
	}
}

func TestRunNodeUnderBudgetShocks(t *testing.T) {
	p, w := runNodeFixture(t)
	spec := Spec{ShockMTBS: 10, ShockFrac: 0.25, ShockLen: 5}
	log := &trace.EventLog{}
	res, err := RunNode(p, w, 208, 4e12, 250*time.Millisecond, NewInjector(spec, 3), log)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shocks == 0 {
		t.Fatal("no shocks fired — lengthen the run or shorten MTBS")
	}
	if log.Count("budget-shock") != res.Shocks {
		t.Fatalf("log records %d shocks, result %d", log.Count("budget-shock"), res.Shocks)
	}
	if res.WorkDone < 4e12*(1-1e-9) {
		t.Fatalf("work done %v of 4e12", res.WorkDone)
	}
	// Shocked runs complete but slower than fault-free.
	clean, err := RunNode(p, w, 208, 4e12, 250*time.Millisecond, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed < clean.Elapsed {
		t.Fatalf("shocked run (%v) faster than clean run (%v)", res.Elapsed, clean.Elapsed)
	}
}

func TestRunNodeRejectsBadArgs(t *testing.T) {
	p, w := runNodeFixture(t)
	if _, err := RunNode(p, w, 208, 0, time.Second, nil, nil); err == nil {
		t.Error("zero work accepted")
	}
	if _, err := RunNode(p, w, 208, 1e9, 0, nil, nil); err == nil {
		t.Error("zero step accepted")
	}
	gpu, _ := hw.PlatformByName("titanxp")
	if _, err := RunNode(gpu, w, 208, 1e9, time.Second, nil, nil); err == nil {
		t.Error("GPU platform accepted")
	}
}
