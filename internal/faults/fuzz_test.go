package faults

import (
	"strings"
	"testing"
)

func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"",
		"none",
		"sensor.drop=0.1",
		"sensor.drop=0.1,sensor.noise=0.05,cap.fail=0.2,cap.stuck=0.1",
		"node.mtbf=400,node.mttr=60",
		"shock.mtbs=900,shock.frac=0.25,shock.len=30",
		"cap.fail=1.5",
		"cap.fail=-1",
		"cap.fail=",
		"=0.5",
		"cap.fail=0.1,cap.fail=0.2",
		"cap.fail=0.1,,",
		"sensor.noise=1e-3",
		"node.mtbf=1e300",
		"cap.fail=NaN",
		"cap.fail=Inf",
		"  cap.fail = 0.5  ",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseSpec(s)
		if err != nil {
			return
		}
		// Accepted specs must validate, render, and round-trip exactly.
		if verr := sp.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted a spec that fails Validate: %v", s, verr)
		}
		rendered := sp.String()
		if rendered == "none" {
			if !sp.Zero() {
				t.Fatalf("non-zero spec %+v rendered as none", sp)
			}
			return
		}
		back, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", rendered, err)
		}
		if back != sp {
			t.Fatalf("round trip %q -> %+v -> %q -> %+v", s, sp, rendered, back)
		}
		// Scaling an accepted spec must stay valid.
		for _, f := range []float64{0, 0.5, 2, 1e6} {
			if verr := sp.Scale(f).Validate(); verr != nil {
				t.Fatalf("Scale(%v) of %q invalid: %v", f, rendered, verr)
			}
		}
		// The injector must construct without panicking.
		_ = NewInjector(sp, 1)
		_ = strings.Count(rendered, ",")
	})
}
