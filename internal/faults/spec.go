// Package faults is a seeded, deterministic fault injector for the
// power-coordination stack. It models the failure classes a production
// power-capped fleet faces — noisy or dropped RAPL sensor readings,
// failed, stuck, or delayed cap actuation, transient node failures, and
// facility budget shocks — so the control path can be tested against the
// conditions FastCap and EcoShift identify as the hard part of power
// capping: keeping the budget invariant while telemetry and actuators
// misbehave.
//
// Everything the injector does is a pure function of (Spec, seed): two
// runs with the same spec and seed produce identical fault sequences,
// byte for byte, which is what makes fault replays debuggable and the
// resilience tests exact.
package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Spec declares fault rates and magnitudes for every injection point.
// The zero value injects nothing.
type Spec struct {
	// SensorDrop is the probability a power-sensor reading is dropped
	// (the consumer sees no sample this step and must act on stale data).
	SensorDrop float64
	// SensorNoise is the relative standard deviation of multiplicative
	// Gaussian noise on sensor readings (0.05 = 5% noise).
	SensorNoise float64
	// CapFail is the probability a cap write returns an error.
	CapFail float64
	// CapStuck is the probability a cap write reports success but does
	// not take effect — the failure mode only readback verification
	// catches.
	CapStuck float64
	// NodeMTBF is the mean time between node failures in seconds
	// (exponential). Zero means nodes never fail.
	NodeMTBF float64
	// NodeMTTR is the mean time to repair a failed node in seconds
	// (exponential). Zero with a non-zero MTBF means failed nodes never
	// return.
	NodeMTTR float64
	// ShockMTBS is the mean time between facility budget shocks in
	// seconds (exponential). Zero means the budget never shocks.
	ShockMTBS float64
	// ShockFrac is the fraction of the facility budget lost during a
	// shock.
	ShockFrac float64
	// ShockLen is the mean shock duration in seconds (exponential).
	ShockLen float64
}

// specFields maps spec-string keys to accessors, in the canonical
// (sorted) order used by String.
var specFields = []struct {
	key string
	get func(*Spec) *float64
}{
	{"cap.fail", func(s *Spec) *float64 { return &s.CapFail }},
	{"cap.stuck", func(s *Spec) *float64 { return &s.CapStuck }},
	{"node.mtbf", func(s *Spec) *float64 { return &s.NodeMTBF }},
	{"node.mttr", func(s *Spec) *float64 { return &s.NodeMTTR }},
	{"sensor.drop", func(s *Spec) *float64 { return &s.SensorDrop }},
	{"sensor.noise", func(s *Spec) *float64 { return &s.SensorNoise }},
	{"shock.frac", func(s *Spec) *float64 { return &s.ShockFrac }},
	{"shock.len", func(s *Spec) *float64 { return &s.ShockLen }},
	{"shock.mtbs", func(s *Spec) *float64 { return &s.ShockMTBS }},
}

// ParseSpec parses a compact fault-spec string of comma-separated
// key=value pairs, e.g.
//
//	"sensor.drop=0.1,sensor.noise=0.05,cap.fail=0.2,node.mtbf=400,node.mttr=60"
//
// Unknown keys, repeated keys, and malformed values are errors. The
// empty string parses to the zero Spec (no faults).
func ParseSpec(s string) (Spec, error) {
	var sp Spec
	s = strings.TrimSpace(s)
	if s == "" {
		return sp, nil
	}
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return Spec{}, fmt.Errorf("faults: empty entry in spec %q", s)
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Spec{}, fmt.Errorf("faults: entry %q is not key=value", part)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if seen[key] {
			return Spec{}, fmt.Errorf("faults: duplicate key %q", key)
		}
		seen[key] = true
		dst := fieldByKey(&sp, key)
		if dst == nil {
			return Spec{}, fmt.Errorf("faults: unknown key %q (valid: %s)", key, strings.Join(specKeys(), " "))
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("faults: key %q: bad value %q: %w", key, val, err)
		}
		*dst = f
	}
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

func fieldByKey(sp *Spec, key string) *float64 {
	for _, f := range specFields {
		if f.key == key {
			return f.get(sp)
		}
	}
	return nil
}

func specKeys() []string {
	keys := make([]string, len(specFields))
	for i, f := range specFields {
		keys[i] = f.key
	}
	sort.Strings(keys)
	return keys
}

// String renders the spec canonically: non-zero fields only, sorted by
// key. ParseSpec(s.String()) reproduces s exactly.
func (sp Spec) String() string {
	var parts []string
	for _, f := range specFields {
		if v := *f.get(&sp); v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%s", f.key, strconv.FormatFloat(v, 'g', -1, 64)))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// Validate rejects out-of-range rates and magnitudes.
func (sp Spec) Validate() error {
	for _, f := range specFields {
		if v := *f.get(&sp); math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("faults: %s=%v is not finite", f.key, v)
		}
	}
	probs := []struct {
		name string
		v    float64
	}{
		{"sensor.drop", sp.SensorDrop},
		{"cap.fail", sp.CapFail},
		{"cap.stuck", sp.CapStuck},
		{"shock.frac", sp.ShockFrac},
	}
	for _, p := range probs {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s=%v outside [0, 1]", p.name, p.v)
		}
	}
	nonneg := []struct {
		name string
		v    float64
	}{
		{"sensor.noise", sp.SensorNoise},
		{"node.mtbf", sp.NodeMTBF},
		{"node.mttr", sp.NodeMTTR},
		{"shock.mtbs", sp.ShockMTBS},
		{"shock.len", sp.ShockLen},
	}
	for _, p := range nonneg {
		if p.v < 0 {
			return fmt.Errorf("faults: %s=%v negative", p.name, p.v)
		}
	}
	if sp.SensorNoise > 1 {
		return fmt.Errorf("faults: sensor.noise=%v above 1 (relative std-dev)", sp.SensorNoise)
	}
	return nil
}

// Zero reports whether the spec injects no faults at all.
func (sp Spec) Zero() bool {
	return sp == Spec{}
}

// Scale returns the spec with every fault made factor times as frequent:
// probabilities multiply (clamped to 1), mean times between failures
// divide. Repair times, shock magnitude, and shock length are severities
// rather than frequencies and stay fixed. Scale(0) is the fault-free
// spec.
func (sp Spec) Scale(factor float64) Spec {
	if factor < 0 {
		factor = 0
	}
	clamp01 := func(v float64) float64 {
		if v > 1 {
			return 1
		}
		return v
	}
	out := sp
	out.SensorDrop = clamp01(sp.SensorDrop * factor)
	out.SensorNoise = clamp01(sp.SensorNoise * factor)
	out.CapFail = clamp01(sp.CapFail * factor)
	out.CapStuck = clamp01(sp.CapStuck * factor)
	if factor == 0 {
		out.NodeMTBF = 0
		out.ShockMTBS = 0
	} else {
		out.NodeMTBF = sp.NodeMTBF / factor
		out.ShockMTBS = sp.ShockMTBS / factor
	}
	return out
}
