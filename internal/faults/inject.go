package faults

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rapl"
	"repro/internal/units"
)

// ErrInjected is the sentinel wrapped by every error the injector
// fabricates, so callers can distinguish injected faults from real ones
// with errors.Is.
var ErrInjected = errors.New("injected fault")

// Injector draws faults from a Spec deterministically. Each fault class
// consumes its own forked RNG stream, so e.g. enabling sensor noise
// cannot shift which cap writes fail.
type Injector struct {
	spec Spec
	seed uint64

	sensorDrop  *RNG
	sensorNoise *RNG
	cap         *RNG
	root        *RNG
}

// NewInjector returns an injector for the given spec and seed.
func NewInjector(spec Spec, seed uint64) *Injector {
	root := NewRNG(seed)
	return &Injector{
		spec:        spec,
		seed:        seed,
		root:        root,
		sensorDrop:  root.Fork("sensor.drop"),
		sensorNoise: root.Fork("sensor.noise"),
		cap:         root.Fork("cap"),
	}
}

// Spec returns the injector's fault spec.
func (in *Injector) Spec() Spec { return in.spec }

// Seed returns the injector's seed.
func (in *Injector) Seed() uint64 { return in.seed }

// SensorRead passes a true power reading through the sensor fault model.
// ok is false when the sample is dropped; otherwise the returned value
// carries multiplicative Gaussian noise (never negative).
func (in *Injector) SensorRead(truth units.Power) (units.Power, bool) {
	if in == nil {
		return truth, true
	}
	if in.spec.SensorDrop > 0 && in.sensorDrop.Float64() < in.spec.SensorDrop {
		return 0, false
	}
	if in.spec.SensorNoise > 0 {
		factor := 1 + in.spec.SensorNoise*in.sensorNoise.Norm()
		if factor < 0 {
			factor = 0
		}
		truth = units.Power(truth.Watts() * factor)
	}
	return truth, true
}

// CapFate is the injector's verdict on one cap-write attempt.
type CapFate int

// Cap-write fates.
const (
	// CapOK: the write goes through to the real actuator.
	CapOK CapFate = iota
	// CapError: the write fails with an (injected) error.
	CapError
	// CapStuckFate: the write reports success but is silently dropped.
	CapStuckFate
)

// CapAttempt draws the fate of one cap-write attempt.
func (in *Injector) CapAttempt() CapFate {
	if in == nil {
		return CapOK
	}
	u := in.cap.Float64()
	switch {
	case u < in.spec.CapFail:
		return CapError
	case u < in.spec.CapFail+in.spec.CapStuck:
		return CapStuckFate
	default:
		return CapOK
	}
}

// Outage is one failure interval of a node: it fails at At and returns
// to service at At+Duration.
type Outage struct {
	At, Duration float64
}

// NodeOutages returns the deterministic outage schedule for a node over
// [0, horizon) seconds. The schedule depends only on (spec, seed,
// nodeID): replaying with the same inputs reproduces it exactly, and
// adding nodes does not perturb the schedules of existing ones.
func (in *Injector) NodeOutages(nodeID string, horizon float64) []Outage {
	if in == nil || in.spec.NodeMTBF <= 0 || horizon <= 0 {
		return nil
	}
	rng := in.root.Fork("node/" + nodeID)
	var out []Outage
	t := 0.0
	for {
		t += rng.Exp(in.spec.NodeMTBF)
		if t >= horizon || math.IsInf(t, 1) {
			return out
		}
		down := rng.Exp(in.spec.NodeMTTR)
		if in.spec.NodeMTTR <= 0 {
			down = math.Inf(1) // never repaired
		}
		out = append(out, Outage{At: t, Duration: down})
		if math.IsInf(down, 1) {
			return out
		}
		t += down
	}
}

// Shock is one facility budget shock: for Duration seconds starting at
// At, the cluster budget is reduced by Frac of its nominal value.
type Shock struct {
	At, Duration, Frac float64
}

// BudgetShocks returns the deterministic facility-shock schedule over
// [0, horizon) seconds. Shocks never overlap.
func (in *Injector) BudgetShocks(horizon float64) []Shock {
	if in == nil || in.spec.ShockMTBS <= 0 || in.spec.ShockFrac <= 0 || horizon <= 0 {
		return nil
	}
	rng := in.root.Fork("budget.shock")
	var out []Shock
	t := 0.0
	for {
		t += rng.Exp(in.spec.ShockMTBS)
		if t >= horizon || math.IsInf(t, 1) {
			return out
		}
		d := rng.Exp(in.spec.ShockLen)
		if in.spec.ShockLen <= 0 {
			d = 0
		}
		if d <= 0 {
			continue
		}
		out = append(out, Shock{At: t, Duration: d, Frac: in.spec.ShockFrac})
		t += d
	}
}

// FaultyController interposes the injector's actuator faults between a
// caller and a real rapl limit setter. It satisfies rapl.LimitSetter, so
// it can sit under rapl.NewResilient — the intended stacking:
//
//	resilient -> faulty -> real controller
//
// Reads (Limit) are never faulted: readback is how the resilient layer
// detects stuck writes.
type FaultyController struct {
	target rapl.LimitSetter
	inj    *Injector

	// Writes, Failed, and Stuck count write attempts by fate.
	Writes, Failed, Stuck int
}

// NewFaultyController wraps target with the injector's actuator faults.
func NewFaultyController(target rapl.LimitSetter, inj *Injector) *FaultyController {
	return &FaultyController{target: target, inj: inj}
}

// SetLimit forwards the write unless the injector fails or sticks it.
func (f *FaultyController) SetLimit(d rapl.Domain, cap units.Power) error {
	f.Writes++
	switch f.inj.CapAttempt() {
	case CapError:
		f.Failed++
		return fmt.Errorf("faults: cap write %v=%v failed: %w", d, cap, ErrInjected)
	case CapStuckFate:
		f.Stuck++
		return nil // reported success, silently dropped
	default:
		return f.target.SetLimit(d, cap)
	}
}

// Limit reads back the true programmed limit.
func (f *FaultyController) Limit(d rapl.Domain) (units.Power, bool) {
	return f.target.Limit(d)
}
