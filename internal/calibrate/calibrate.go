// Package calibrate fits workload models to measured anchors — the
// workflow for porting a real application into the simulator. Given the
// numbers an operator can read off a real node (uncapped package power,
// uncapped DRAM power, achieved performance), it adjusts the model's free
// parameters (activity factor, bandwidth efficiency, compute efficiency)
// until the simulated run reproduces them.
//
// The same procedure produced the built-in catalog's calibration against
// the paper's reported watt ranges (DESIGN.md section 2).
package calibrate

import (
	"fmt"
	"math"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// Anchors are the measured values to reproduce, all from one uncapped run
// on the target platform. Zero-valued anchors are ignored.
type Anchors struct {
	// ProcPower is the measured package power.
	ProcPower units.Power
	// MemPower is the measured DRAM power.
	MemPower units.Power
	// Perf is the measured performance in the workload's unit.
	Perf float64
}

// Result reports the fit.
type Result struct {
	// Workload is the calibrated model.
	Workload workload.Workload
	// ProcErr, MemErr and PerfErr are the relative residuals against the
	// anchors (zero for anchors that were not given).
	ProcErr, MemErr, PerfErr float64
	// Iterations counts simulator runs spent fitting.
	Iterations int
}

// tolerance is the relative residual at which a fit is accepted.
const tolerance = 0.02

// maxBisection bounds each parameter search.
const maxBisection = 40

// Fit adjusts w's free parameters so an uncapped run on p reproduces the
// anchors. The fit order follows the model's causal structure:
//
//  1. bandwidth efficiency sets the achieved traffic, which dominates
//     both DRAM power and memory-bound performance;
//  2. the activity factors scale package power at fixed performance;
//  3. compute efficiency trims performance for compute-bound workloads.
//
// Anchors that conflict with the model's structure (e.g. a DRAM power
// below the platform's background floor) return an error rather than a
// bad fit.
func Fit(p hw.Platform, w workload.Workload, a Anchors) (Result, error) {
	if p.Kind != hw.KindCPU {
		return Result{}, fmt.Errorf("calibrate: platform %q is not a CPU platform", p.Name)
	}
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if a.MemPower > 0 && a.MemPower <= p.DRAM.BackgroundPower {
		return Result{}, fmt.Errorf("calibrate: DRAM anchor %v at or below the %v background floor",
			a.MemPower, p.DRAM.BackgroundPower)
	}
	if a.ProcPower > 0 && a.ProcPower <= p.CPU.IdlePower {
		return Result{}, fmt.Errorf("calibrate: package anchor %v at or below the %v hardware floor",
			a.ProcPower, p.CPU.IdlePower)
	}

	res := Result{Workload: w}
	run := func() (sim.Result, error) {
		res.Iterations++
		return sim.RunCPU(p, &res.Workload, 0, 0)
	}

	// 1. Memory power (and memory-bound perf) via bandwidth efficiency.
	if a.MemPower > 0 {
		err := bisect(0.01, 1.0, func(x float64) (float64, error) {
			scaleAll(&res.Workload, func(ph *workload.Phase) { ph.BandwidthEff = x })
			r, err := run()
			if err != nil {
				return 0, err
			}
			return r.MemPower.Watts() - a.MemPower.Watts(), nil
		})
		if err != nil {
			return Result{}, fmt.Errorf("calibrate: memory power: %w", err)
		}
	}

	// 2. Package power via the activity factors (scaled jointly so the
	// busy/stalled ratio is preserved).
	if a.ProcPower > 0 {
		base := snapshotActivities(&res.Workload)
		err := bisect(0.05, 1.6, func(scale float64) (float64, error) {
			applyActivityScale(&res.Workload, base, scale)
			r, err := run()
			if err != nil {
				return 0, err
			}
			return r.ProcPower.Watts() - a.ProcPower.Watts(), nil
		})
		if err != nil {
			return Result{}, fmt.Errorf("calibrate: package power: %w", err)
		}
	}

	// 3. Performance via compute efficiency (only moves compute-bound
	// workloads; memory-bound performance was set in step 1).
	if a.Perf > 0 {
		err := bisect(0.05, 1.0, func(x float64) (float64, error) {
			scaleAll(&res.Workload, func(ph *workload.Phase) { ph.ComputeEff = x })
			r, err := run()
			if err != nil {
				return 0, err
			}
			return r.Perf - a.Perf, nil
		})
		// A perf anchor the compute knob cannot reach is reported through
		// the residual rather than failing: the workload may simply be
		// memory bound.
		_ = err
	}

	final, err := run()
	if err != nil {
		return Result{}, err
	}
	res.ProcErr = relErr(final.ProcPower.Watts(), a.ProcPower.Watts())
	res.MemErr = relErr(final.MemPower.Watts(), a.MemPower.Watts())
	res.PerfErr = relErr(final.Perf, a.Perf)
	return res, nil
}

// Converged reports whether every given anchor fits within tolerance.
func (r Result) Converged() bool {
	return r.ProcErr <= tolerance && r.MemErr <= tolerance && r.PerfErr <= tolerance
}

// relErr is the relative residual, zero when the anchor was not given.
func relErr(got, want float64) float64 {
	if want <= 0 {
		return 0
	}
	return math.Abs(got-want) / want
}

// bisect finds x in [lo, hi] where f(x) crosses zero, assuming f is
// monotone increasing in x. If the target lies outside the bracket the
// nearest endpoint is kept (the caller reads the residual).
func bisect(lo, hi float64, f func(float64) (float64, error)) error {
	fLo, err := f(lo)
	if err != nil {
		return err
	}
	if fLo >= 0 {
		return nil // already above target at the bottom: keep lo
	}
	fHi, err := f(hi)
	if err != nil {
		return err
	}
	if fHi <= 0 {
		return nil // target unreachable: keep hi
	}
	for i := 0; i < maxBisection; i++ {
		mid := (lo + hi) / 2
		v, err := f(mid)
		if err != nil {
			return err
		}
		if math.Abs(v) < 1e-3 {
			return nil
		}
		if v < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	// Land on the midpoint of the final bracket.
	_, err = f((lo + hi) / 2)
	return err
}

func scaleAll(w *workload.Workload, set func(*workload.Phase)) {
	for i := range w.Phases {
		set(&w.Phases[i])
	}
}

type activitySnapshot struct{ base, stall []float64 }

func snapshotActivities(w *workload.Workload) activitySnapshot {
	var s activitySnapshot
	for _, ph := range w.Phases {
		s.base = append(s.base, ph.ActivityBase)
		s.stall = append(s.stall, ph.StallActivity)
	}
	return s
}

func applyActivityScale(w *workload.Workload, snap activitySnapshot, scale float64) {
	for i := range w.Phases {
		b := clampRange(snap.base[i]*scale, 0.02, 1)
		s := clampRange(snap.stall[i]*scale, 0.01, b)
		w.Phases[i].ActivityBase = b
		w.Phases[i].StallActivity = s
	}
}

func clampRange(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
