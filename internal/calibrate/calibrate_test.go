package calibrate

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/workload"
)

func ivy(t *testing.T) hw.Platform {
	t.Helper()
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFitReproducesAnchors(t *testing.T) {
	// Take a catalog workload, perturb its parameters, and require the
	// fit to recover the original uncapped behaviour from its anchors.
	p := ivy(t)
	orig, err := workload.ByName("stream")
	if err != nil {
		t.Fatal(err)
	}
	truth, err := sim.RunCPU(p, &orig, 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	perturbed := orig
	perturbed.Phases = append([]workload.Phase(nil), orig.Phases...)
	perturbed.Phases[0].BandwidthEff = 0.4
	perturbed.Phases[0].ActivityBase = 0.9
	perturbed.Phases[0].StallActivity = 0.45

	res, err := Fit(p, perturbed, Anchors{
		ProcPower: truth.ProcPower,
		MemPower:  truth.MemPower,
		Perf:      truth.Perf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged() {
		t.Fatalf("fit did not converge: proc %.3f mem %.3f perf %.3f (%d runs)",
			res.ProcErr, res.MemErr, res.PerfErr, res.Iterations)
	}
	check, err := sim.RunCPU(p, &res.Workload, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(check.Perf, truth.Perf) > 0.03 {
		t.Errorf("calibrated perf %.1f vs truth %.1f", check.Perf, truth.Perf)
	}
	if relErr(check.MemPower.Watts(), truth.MemPower.Watts()) > 0.03 {
		t.Errorf("calibrated mem power %v vs truth %v", check.MemPower, truth.MemPower)
	}
}

func TestFitSyntheticToPaperAnchors(t *testing.T) {
	// Fit a generic synthetic model to the paper's SRA anchors
	// (~109 W CPU, ~116 W DRAM): the headline use case.
	p := ivy(t)
	spec := workload.SyntheticSpec{
		Name: "sra-like", Kind: hw.KindCPU,
		OpsPerByte: 0.05, Randomness: 1.0,
		Vectorized: 0.4, OverlapQuality: 0.1,
	}
	w, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fit(p, w, Anchors{ProcPower: 109, MemPower: 116})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProcErr > 0.02 || res.MemErr > 0.02 {
		t.Fatalf("fit residuals: proc %.3f mem %.3f", res.ProcErr, res.MemErr)
	}
	final, err := sim.RunCPU(p, &res.Workload, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.ProcPower.Watts() < 106 || final.ProcPower.Watts() > 112 {
		t.Errorf("fitted CPU power = %v", final.ProcPower)
	}
	if final.MemPower.Watts() < 113 || final.MemPower.Watts() > 119 {
		t.Errorf("fitted DRAM power = %v", final.MemPower)
	}
}

func TestFitRejectsImpossibleAnchors(t *testing.T) {
	p := ivy(t)
	w, _ := workload.ByName("stream")
	if _, err := Fit(p, w, Anchors{MemPower: p.DRAM.BackgroundPower - 5}); err == nil {
		t.Error("sub-floor DRAM anchor accepted")
	}
	if _, err := Fit(p, w, Anchors{ProcPower: p.CPU.IdlePower - 5}); err == nil {
		t.Error("sub-floor package anchor accepted")
	}
	xp, _ := hw.PlatformByName("titanxp")
	if _, err := Fit(xp, w, Anchors{ProcPower: 100}); err == nil {
		t.Error("GPU platform accepted")
	}
	bad := w
	bad.Phases = nil
	if _, err := Fit(p, bad, Anchors{}); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestFitPartialAnchors(t *testing.T) {
	// Fitting only the memory anchor must leave the other residuals at
	// zero (not-given) and still converge.
	p := ivy(t)
	w, _ := workload.ByName("mg")
	res, err := Fit(p, w, Anchors{MemPower: 110})
	if err != nil {
		t.Fatal(err)
	}
	if res.MemErr > 0.02 {
		t.Errorf("memory residual %.3f", res.MemErr)
	}
	if res.ProcErr != 0 || res.PerfErr != 0 {
		t.Errorf("ungiven anchors should have zero residuals: %+v", res)
	}
	if !res.Converged() {
		t.Error("partial fit should converge")
	}
}

func TestFitUnreachableAnchorReportsResidual(t *testing.T) {
	// A performance anchor far above the platform's capability keeps the
	// nearest endpoint and reports a big residual instead of failing.
	p := ivy(t)
	w, _ := workload.ByName("dgemm")
	res, err := Fit(p, w, Anchors{Perf: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerfErr < 0.5 {
		t.Errorf("unreachable perf anchor residual %.3f, want large", res.PerfErr)
	}
	if res.Converged() {
		t.Error("unreachable anchor must not report convergence")
	}
}

func TestFitMultiPhasePreservesStructure(t *testing.T) {
	p := ivy(t)
	w, _ := workload.ByName("bt")
	res, err := Fit(p, w, Anchors{ProcPower: 150, MemPower: 95})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workload.Phases) != len(w.Phases) {
		t.Error("fit changed the phase structure")
	}
	if err := res.Workload.Validate(); err != nil {
		t.Errorf("fitted workload invalid: %v", err)
	}
	// Anchors within the platform's envelope fit tightly.
	if res.ProcErr > 0.02 || res.MemErr > 0.02 {
		t.Errorf("residuals: proc %.3f mem %.3f", res.ProcErr, res.MemErr)
	}
}
