package rapl

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/units"
)

// Domain identifies a RAPL power domain on the emulated node.
type Domain int

// The two domains the paper caps: the processor package(s) and DRAM.
const (
	DomainPackage Domain = iota
	DomainDRAM
)

// String returns "package" or "dram".
func (d Domain) String() string {
	switch d {
	case DomainPackage:
		return "package"
	case DomainDRAM:
		return "dram"
	default:
		return fmt.Sprintf("Domain(%d)", int(d))
	}
}

// PackageState is the processor operating state the actuator selected to
// honor the package cap: a P-state frequency and a T-state duty cycle.
type PackageState struct {
	Freq units.Frequency
	Duty float64
	// Throttled reports whether T-states (clock throttling) are engaged —
	// the boundary between the paper's scenarios II and IV.
	Throttled bool
	// AtFloor reports whether even the deepest throttle state exceeds the
	// cap, so the package runs at its hardware floor and the cap is not
	// respected (the paper's scenario VI).
	AtFloor bool
}

// Controller emulates the RAPL control loop for one node: it owns the MSR
// register file, exposes cap programming in watts, and actuates processor
// and DRAM states to meet the programmed caps.
type Controller struct {
	cpu  *hw.CPUSpec
	dram *hw.DRAMSpec
	msrs *RegisterFile
}

// NewController returns a controller for the given CPU-node component
// specs.
func NewController(cpu *hw.CPUSpec, dram *hw.DRAMSpec) *Controller {
	return &Controller{cpu: cpu, dram: dram, msrs: NewRegisterFile()}
}

// MSRs exposes the emulated register file (for tools that want the
// raw-MSR view, mirroring how real power managers program RAPL).
func (c *Controller) MSRs() *RegisterFile { return c.msrs }

// SetLimit programs a power cap on a domain with the default 1 s
// averaging window. A zero or negative cap disables the limit.
func (c *Controller) SetLimit(d Domain, cap units.Power) error {
	return c.SetLimitWindow(d, cap, time.Second)
}

// SetLimitWindow programs a power cap with an explicit averaging window.
func (c *Controller) SetLimitWindow(d Domain, cap units.Power, window time.Duration) error {
	addr := MSRPkgPowerLimit
	if d == DomainDRAM {
		addr = MSRDramPowerLimit
	}
	if cap <= 0 {
		return c.msrs.Write(addr, 0) // disabled
	}
	return c.msrs.Write(addr, EncodeLimit(cap.Watts(), window.Seconds()))
}

// Limit returns the programmed cap for a domain and whether limiting is
// enabled.
func (c *Controller) Limit(d Domain) (units.Power, bool) {
	addr := MSRPkgPowerLimit
	if d == DomainDRAM {
		addr = MSRDramPowerLimit
	}
	reg, err := c.msrs.Read(addr)
	if err != nil {
		return 0, false
	}
	w, _, enabled := DecodeLimit(reg)
	return units.Power(w), enabled
}

// ActuatePackage selects the processor operating state for the programmed
// package cap, given the workload's current activity factor. It follows
// the mechanism ordering the paper describes in Section 3.3: run at the
// highest P-state that fits; if even the lowest P-state exceeds the cap,
// engage T-state clock throttling; if the deepest throttle still exceeds
// the cap, run at the floor regardless (the cap is not respected).
func (c *Controller) ActuatePackage(act float64) PackageState {
	cap, enabled := c.Limit(DomainPackage)
	if !enabled {
		return PackageState{Freq: c.cpu.FNom, Duty: 1}
	}
	// Highest P-state under the cap, no throttling.
	pstates := c.cpu.PStates()
	for i := len(pstates) - 1; i >= 0; i-- {
		if c.cpu.Power(pstates[i], 1, act) <= cap {
			return PackageState{Freq: pstates[i], Duty: 1}
		}
	}
	// Lowest P-state still over the cap: engage T-states at FMin.
	for _, duty := range c.cpu.Duties()[1:] {
		if c.cpu.Power(c.cpu.FMin, duty, act) <= cap {
			return PackageState{Freq: c.cpu.FMin, Duty: duty, Throttled: true}
		}
	}
	// Even the deepest throttle exceeds the cap: hardware floor.
	return PackageState{
		Freq: c.cpu.FMin, Duty: c.cpu.MinDuty,
		Throttled: true, AtFloor: true,
	}
}

// PackagePower returns the package power drawn in state s at activity
// act.
func (c *Controller) PackagePower(s PackageState, act float64) units.Power {
	return c.cpu.Power(s.Freq, s.Duty, act)
}

// DRAMBandwidthCeiling returns the bandwidth ceiling DRAM throttling
// imposes for the programmed DRAM cap and the workload's random-access
// fraction. With no cap programmed, the ceiling is the physical peak.
func (c *Controller) DRAMBandwidthCeiling(randomFrac float64) units.Bandwidth {
	cap, enabled := c.Limit(DomainDRAM)
	if !enabled {
		return c.dram.PeakBandwidth()
	}
	return c.dram.BandwidthForPower(cap, randomFrac)
}

// DRAMPower returns the DRAM power drawn when moving bw with the given
// random fraction; it never drops below the background floor, so low caps
// are not respected (the paper's footnote on scenario V).
func (c *Controller) DRAMPower(bw units.Bandwidth, randomFrac float64) units.Power {
	return c.dram.Power(bw, randomFrac)
}

// AccumulateEnergy advances the 32-bit wrapping energy counters by the
// given power over dt, for tools that read MSR_*_ENERGY_STATUS.
func (c *Controller) AccumulateEnergy(pkg, dram units.Power, dt time.Duration) {
	c.msrs.addEnergy(MSRPkgEnergyStatus, pkg.Watts()*dt.Seconds())
	c.msrs.addEnergy(MSRDramEnergyStatus, dram.Watts()*dt.Seconds())
}

// Energy returns the accumulated energy for a domain as counted by the
// wrapping MSR counter.
func (c *Controller) Energy(d Domain) units.Energy {
	addr := MSRPkgEnergyStatus
	if d == DomainDRAM {
		addr = MSRDramEnergyStatus
	}
	reg, err := c.msrs.Read(addr)
	if err != nil {
		return 0
	}
	return units.Energy(EnergyJoules(reg))
}
