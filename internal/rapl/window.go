package rapl

import (
	"time"

	"repro/internal/units"
)

// Window tracks a running average of power samples over a fixed time
// window — the "running average" in Running Average Power Limit. The
// steady-state simulator does not need it (steady power equals its own
// average), but the time-stepped trace simulator uses it to check that
// transient excursions stay within the programmed limit semantics.
type Window struct {
	span    time.Duration
	samples []sample
	sum     float64 // watt-seconds currently inside the window
}

type sample struct {
	at    time.Duration // end time of the sample
	dt    time.Duration
	watts float64
}

// NewWindow returns a running-average tracker over the given span. Spans
// of zero or less default to one second, RAPL's customary window.
func NewWindow(span time.Duration) *Window {
	if span <= 0 {
		span = time.Second
	}
	return &Window{span: span}
}

// Span returns the configured window length.
func (w *Window) Span() time.Duration { return w.span }

// Add appends a sample of the given power lasting dt and expires samples
// that have slid out of the window.
func (w *Window) Add(p units.Power, dt time.Duration) {
	if dt <= 0 {
		return
	}
	var end time.Duration
	if n := len(w.samples); n > 0 {
		end = w.samples[n-1].at
	}
	end += dt
	w.samples = append(w.samples, sample{at: end, dt: dt, watts: p.Watts()})
	w.sum += p.Watts() * dt.Seconds()
	// Expire samples wholly outside [end-span, end]. Partially covered
	// samples are trimmed proportionally.
	cutoff := end - w.span
	for len(w.samples) > 0 {
		s := w.samples[0]
		start := s.at - s.dt
		if s.at <= cutoff {
			w.sum -= s.watts * s.dt.Seconds()
			w.samples = w.samples[1:]
			continue
		}
		if start < cutoff {
			trim := cutoff - start
			w.sum -= s.watts * trim.Seconds()
			w.samples[0].dt -= trim
		}
		break
	}
	if w.sum < 0 {
		w.sum = 0
	}
}

// Average returns the mean power over the most recent window. Before a
// full window of samples has accumulated, the average is over the samples
// seen so far.
func (w *Window) Average() units.Power {
	var covered time.Duration
	for _, s := range w.samples {
		covered += s.dt
	}
	if covered <= 0 {
		return 0
	}
	if covered > w.span {
		covered = w.span
	}
	return units.Power(w.sum / covered.Seconds())
}

// Reset discards all samples.
func (w *Window) Reset() {
	w.samples = w.samples[:0]
	w.sum = 0
}
