package rapl

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/hw"
	"repro/internal/units"
)

func newIvyController() *Controller {
	p := hw.IvyBridge()
	return NewController(p.CPU, p.DRAM)
}

func TestRegisterFileUnits(t *testing.T) {
	rf := NewRegisterFile()
	v, err := rf.Read(MSRRaplPowerUnit)
	if err != nil {
		t.Fatal(err)
	}
	if v&0xF != powerUnitBits {
		t.Errorf("power unit bits = %d", v&0xF)
	}
	if (v>>8)&0x1F != energyUnitBits {
		t.Errorf("energy unit bits = %d", (v>>8)&0x1F)
	}
	if (v>>16)&0xF != timeUnitBits {
		t.Errorf("time unit bits = %d", (v>>16)&0xF)
	}
}

func TestRegisterFileAccessControl(t *testing.T) {
	rf := NewRegisterFile()
	if err := rf.Write(MSRRaplPowerUnit, 1); err == nil {
		t.Error("unit register should be read-only")
	}
	if err := rf.Write(MSRPkgEnergyStatus, 1); err == nil {
		t.Error("energy status should be read-only")
	}
	if _, err := rf.Read(0x1234); err == nil {
		t.Error("unimplemented MSR read should error")
	}
	if err := rf.Write(0x1234, 1); err == nil {
		t.Error("unimplemented MSR write should error")
	}
	if err := rf.Write(MSRPkgPowerLimit, EncodeLimit(100, 1)); err != nil {
		t.Errorf("limit write failed: %v", err)
	}
}

func TestLimitEncodingRoundTrip(t *testing.T) {
	f := func(wRaw float64) bool {
		w := math.Abs(math.Mod(wRaw, 4000))
		reg := EncodeLimit(w, 1.0)
		got, window, enabled := DecodeLimit(reg)
		if !enabled {
			return false
		}
		// Power quantizes to 1/8 W.
		if math.Abs(got-w) > PowerUnit {
			return false
		}
		// 1 s window encodes exactly (1024 ticks).
		return math.Abs(window-1.0) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLimitEncodingEdges(t *testing.T) {
	if reg := EncodeLimit(-5, 1); reg&powerMask != 0 {
		t.Error("negative watts should clamp to zero")
	}
	// Very long windows saturate the exponent field.
	_, win, _ := DecodeLimit(EncodeLimit(100, 1e9))
	if win <= 0 {
		t.Error("saturated window should stay positive")
	}
	// Sub-tick windows round to one tick.
	_, win, _ = DecodeLimit(EncodeLimit(100, 1e-6))
	if math.Abs(win-TimeUnit) > 1e-9 {
		t.Errorf("tiny window = %v, want one tick %v", win, TimeUnit)
	}
}

func TestControllerSetAndReadLimit(t *testing.T) {
	c := newIvyController()
	if err := c.SetLimit(DomainPackage, 120); err != nil {
		t.Fatal(err)
	}
	got, enabled := c.Limit(DomainPackage)
	if !enabled || math.Abs(got.Watts()-120) > PowerUnit {
		t.Errorf("package limit = %v enabled=%v", got, enabled)
	}
	// DRAM independent.
	if _, enabled := c.Limit(DomainDRAM); enabled {
		t.Error("DRAM limit should start disabled")
	}
	if err := c.SetLimit(DomainDRAM, 90); err != nil {
		t.Fatal(err)
	}
	got, enabled = c.Limit(DomainDRAM)
	if !enabled || math.Abs(got.Watts()-90) > PowerUnit {
		t.Errorf("dram limit = %v enabled=%v", got, enabled)
	}
	// Zero cap disables.
	if err := c.SetLimit(DomainPackage, 0); err != nil {
		t.Fatal(err)
	}
	if _, enabled := c.Limit(DomainPackage); enabled {
		t.Error("zero cap should disable limiting")
	}
}

func TestActuateUncappedRunsNominal(t *testing.T) {
	c := newIvyController()
	s := c.ActuatePackage(0.8)
	p := hw.IvyBridge()
	if s.Freq != p.CPU.FNom || s.Duty != 1 || s.Throttled {
		t.Errorf("uncapped state = %+v", s)
	}
}

func TestActuatePStateRegion(t *testing.T) {
	c := newIvyController()
	p := hw.IvyBridge()
	act := 0.8
	// Cap between lowest and highest P-state powers: actuator must pick a
	// P-state with duty 1 whose power fits, and the next P-state up must
	// not fit (highest-fitting property).
	lo := p.CPU.Power(p.CPU.FMin, 1, act)
	hi := p.CPU.MaxPower(act)
	for cap := lo + 2; cap < hi; cap += 5 {
		if err := c.SetLimit(DomainPackage, cap); err != nil {
			t.Fatal(err)
		}
		s := c.ActuatePackage(act)
		if s.Throttled || s.Duty != 1 {
			t.Fatalf("cap %v: unexpectedly throttled: %+v", cap, s)
		}
		if got := c.PackagePower(s, act); got > cap+0.01 {
			t.Fatalf("cap %v: power %v exceeds cap", cap, got)
		}
		next := s.Freq + p.CPU.PStateStep
		if next <= p.CPU.FNom {
			if p.CPU.Power(next, 1, act) <= cap-PowerUnit {
				t.Fatalf("cap %v: %v fits but actuator chose %v", cap, next, s.Freq)
			}
		}
	}
}

func TestActuateTStateRegion(t *testing.T) {
	c := newIvyController()
	p := hw.IvyBridge()
	act := 0.8
	// Cap below lowest P-state power but above the deepest-throttle power:
	// actuator must engage T-states at FMin.
	tLow := p.CPU.Power(p.CPU.FMin, p.CPU.MinDuty, act)
	pLow := p.CPU.Power(p.CPU.FMin, 1, act)
	for cap := tLow + 1; cap < pLow-1; cap += 2 {
		if err := c.SetLimit(DomainPackage, cap); err != nil {
			t.Fatal(err)
		}
		s := c.ActuatePackage(act)
		if !s.Throttled || s.Freq != p.CPU.FMin {
			t.Fatalf("cap %v: expected throttling at FMin, got %+v", cap, s)
		}
		if s.AtFloor {
			t.Fatalf("cap %v: unexpectedly at floor", cap)
		}
		if got := c.PackagePower(s, act); got > cap+0.01 {
			t.Fatalf("cap %v: power %v exceeds cap", cap, got)
		}
	}
}

func TestActuateFloorDisregardsCap(t *testing.T) {
	c := newIvyController()
	p := hw.IvyBridge()
	act := 0.8
	floor := p.CPU.Power(p.CPU.FMin, p.CPU.MinDuty, act)
	if err := c.SetLimit(DomainPackage, floor-10); err != nil {
		t.Fatal(err)
	}
	s := c.ActuatePackage(act)
	if !s.AtFloor {
		t.Fatalf("expected floor state, got %+v", s)
	}
	// Power exceeds the cap — scenario VI of the paper.
	if got := c.PackagePower(s, act); got <= floor-10 {
		t.Errorf("floor power %v should exceed the impossible cap", got)
	}
}

func TestActuateMonotoneInCap(t *testing.T) {
	c := newIvyController()
	act := 0.6
	prevPerf := -1.0
	for cap := units.Power(40); cap <= 200; cap += 2 {
		if err := c.SetLimit(DomainPackage, cap); err != nil {
			t.Fatal(err)
		}
		s := c.ActuatePackage(act)
		perf := s.Freq.Hz() * s.Duty
		if perf < prevPerf-1 {
			t.Fatalf("performance state not monotone at cap %v", cap)
		}
		prevPerf = perf
	}
}

func TestDRAMBandwidthCeiling(t *testing.T) {
	c := newIvyController()
	p := hw.IvyBridge()
	// Uncapped: physical peak.
	if got := c.DRAMBandwidthCeiling(0); got != p.DRAM.PeakBandwidth() {
		t.Errorf("uncapped ceiling = %v", got)
	}
	// Capped to background+10W with streaming traffic.
	if err := c.SetLimit(DomainDRAM, p.DRAM.BackgroundPower+10); err != nil {
		t.Fatal(err)
	}
	got := c.DRAMBandwidthCeiling(0)
	want := 10.0 / p.DRAM.EnergyPerByteStream
	if math.Abs(got.BytesPerSecond()-want) > want*0.05 {
		t.Errorf("ceiling = %v, want ~%v B/s", got, want)
	}
	// Random traffic gets a much lower ceiling for the same cap.
	rnd := c.DRAMBandwidthCeiling(1)
	if rnd >= got {
		t.Error("random ceiling should be below streaming ceiling")
	}
}

func TestEnergyCountersAccumulateAndWrap(t *testing.T) {
	c := newIvyController()
	c.AccumulateEnergy(100, 50, 2*time.Second)
	pkg := c.Energy(DomainPackage).Joules()
	if math.Abs(pkg-200) > 0.01 {
		t.Errorf("package energy = %v, want 200 J", pkg)
	}
	dram := c.Energy(DomainDRAM).Joules()
	if math.Abs(dram-100) > 0.01 {
		t.Errorf("dram energy = %v, want 100 J", dram)
	}
	// The 32-bit counter wraps at 2^32 energy units (~65536 J).
	wrapJoules := float64(1<<32) * EnergyUnit
	c.AccumulateEnergy(units.Power(wrapJoules), 0, time.Second)
	after := c.Energy(DomainPackage).Joules()
	if after >= wrapJoules {
		t.Errorf("counter did not wrap: %v", after)
	}
	if math.Abs(after-200) > 0.5 {
		t.Errorf("wrapped counter = %v, want ~200", after)
	}
}

func TestDomainString(t *testing.T) {
	if DomainPackage.String() != "package" || DomainDRAM.String() != "dram" {
		t.Error("domain names")
	}
	if Domain(9).String() == "" {
		t.Error("unknown domain should format")
	}
}

func TestWindowAverage(t *testing.T) {
	w := NewWindow(time.Second)
	w.Add(100, 500*time.Millisecond)
	w.Add(200, 500*time.Millisecond)
	if got := w.Average().Watts(); math.Abs(got-150) > 0.01 {
		t.Errorf("average = %v, want 150", got)
	}
	// Slide: another 1 s at 200 W pushes the early samples out.
	w.Add(200, time.Second)
	if got := w.Average().Watts(); math.Abs(got-200) > 0.01 {
		t.Errorf("post-slide average = %v, want 200", got)
	}
}

func TestWindowPartialTrim(t *testing.T) {
	w := NewWindow(time.Second)
	w.Add(100, 2*time.Second) // only the last second counts
	w.Add(300, 500*time.Millisecond)
	// Window now covers 500 ms of 100 W and 500 ms of 300 W.
	if got := w.Average().Watts(); math.Abs(got-200) > 0.5 {
		t.Errorf("trimmed average = %v, want ~200", got)
	}
}

func TestWindowEdgeCases(t *testing.T) {
	w := NewWindow(0) // defaults to 1 s
	if w.Span() != time.Second {
		t.Errorf("default span = %v", w.Span())
	}
	if got := w.Average(); got != 0 {
		t.Errorf("empty average = %v", got)
	}
	w.Add(50, 0) // ignored
	if got := w.Average(); got != 0 {
		t.Errorf("zero-duration sample counted: %v", got)
	}
	w.Add(75, 100*time.Millisecond)
	if got := w.Average().Watts(); math.Abs(got-75) > 0.01 {
		t.Errorf("partial-window average = %v, want 75", got)
	}
	w.Reset()
	if got := w.Average(); got != 0 {
		t.Errorf("post-reset average = %v", got)
	}
}

func TestWindowNeverNegative(t *testing.T) {
	w := NewWindow(250 * time.Millisecond)
	f := func(vals []float64) bool {
		for _, v := range vals {
			watts := math.Abs(math.Mod(v, 500))
			w.Add(units.Power(watts), 50*time.Millisecond)
			if w.Average() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
