package rapl

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/units"
)

// MultiController models the node as real hardware exposes it: one RAPL
// package domain (plus a DRAM subdomain) per socket, each with its own
// MSRs and actuator. The paper simplifies this to a single aggregate
// component with the budget "evenly distributed to all cores"; this layer
// implements that distribution explicitly — a node-level cap splits
// evenly across sockets — and the equivalence test in multi_test.go
// verifies the aggregate model used everywhere else matches it exactly
// for balanced workloads.
type MultiController struct {
	perSocket []*Controller
	cpu       *hw.CPUSpec
}

// SplitCPUSpec divides an aggregate multi-socket CPU spec into per-socket
// specs: core counts and power parameters scale by 1/sockets, frequency
// and voltage curves stay shared.
func SplitCPUSpec(c *hw.CPUSpec) []*hw.CPUSpec {
	out := make([]*hw.CPUSpec, c.Sockets)
	for i := range out {
		s := *c
		s.Name = fmt.Sprintf("%s (socket %d)", c.Name, i)
		s.Sockets = 1
		s.IdlePower = c.IdlePower / units.Power(c.Sockets)
		s.UncorePower = c.UncorePower / units.Power(c.Sockets)
		s.MaxDynPower = c.MaxDynPower / units.Power(c.Sockets)
		out[i] = &s
	}
	return out
}

// SplitDRAMSpec divides an aggregate DRAM spec into per-socket specs
// (half the channels, capacity, background power, and throttle headroom
// on a two-socket node).
func SplitDRAMSpec(d *hw.DRAMSpec, sockets int) []*hw.DRAMSpec {
	out := make([]*hw.DRAMSpec, sockets)
	for i := range out {
		s := *d
		s.Name = fmt.Sprintf("%s (socket %d)", d.Name, i)
		s.TotalGB = d.TotalGB / sockets
		s.Channels = d.Channels / sockets
		s.BackgroundPower = d.BackgroundPower / units.Power(sockets)
		s.MinThrottleHeadroom = d.MinThrottleHeadroom / units.Power(sockets)
		out[i] = &s
	}
	return out
}

// NewMultiController builds one controller per socket of the platform.
func NewMultiController(p hw.Platform) (*MultiController, error) {
	if p.Kind != hw.KindCPU {
		return nil, fmt.Errorf("rapl: platform %q is not a CPU platform", p.Name)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cpus := SplitCPUSpec(p.CPU)
	drams := SplitDRAMSpec(p.DRAM, p.CPU.Sockets)
	mc := &MultiController{cpu: p.CPU}
	for i := range cpus {
		mc.perSocket = append(mc.perSocket, NewController(cpus[i], drams[i]))
	}
	return mc, nil
}

// Sockets returns the number of per-socket controllers.
func (m *MultiController) Sockets() int { return len(m.perSocket) }

// Socket returns the controller for one socket.
func (m *MultiController) Socket(i int) *Controller { return m.perSocket[i] }

// SetNodeLimits distributes node-level caps evenly across sockets — the
// paper's simplification made concrete. Zero disables a cap on every
// socket.
func (m *MultiController) SetNodeLimits(procCap, memCap units.Power) error {
	n := units.Power(len(m.perSocket))
	for _, c := range m.perSocket {
		pc, mc := procCap/n, memCap/n
		if procCap <= 0 {
			pc = 0
		}
		if memCap <= 0 {
			mc = 0
		}
		if err := c.SetLimit(DomainPackage, pc); err != nil {
			return err
		}
		if err := c.SetLimit(DomainDRAM, mc); err != nil {
			return err
		}
	}
	return nil
}

// ActuateNode actuates every socket at the given activity (balanced
// workloads drive all sockets identically) and returns the per-socket
// states plus the summed package power.
func (m *MultiController) ActuateNode(act float64) ([]PackageState, units.Power) {
	states := make([]PackageState, len(m.perSocket))
	var total units.Power
	for i, c := range m.perSocket {
		states[i] = c.ActuatePackage(act)
		total += c.PackagePower(states[i], act)
	}
	return states, total
}

// NodeDRAMBandwidthCeiling sums the per-socket throttling ceilings.
func (m *MultiController) NodeDRAMBandwidthCeiling(randomFrac float64) units.Bandwidth {
	var total units.Bandwidth
	for _, c := range m.perSocket {
		total += c.DRAMBandwidthCeiling(randomFrac)
	}
	return total
}
