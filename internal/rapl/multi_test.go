package rapl

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/units"
)

func TestSplitCPUSpecConserves(t *testing.T) {
	p := hw.IvyBridge()
	parts := SplitCPUSpec(p.CPU)
	if len(parts) != 2 {
		t.Fatalf("split into %d, want 2", len(parts))
	}
	var cores int
	var idle, dyn units.Power
	for _, s := range parts {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		cores += s.Cores()
		idle += s.IdlePower
		dyn += s.MaxDynPower
	}
	if cores != p.CPU.Cores() {
		t.Errorf("cores %d, want %d", cores, p.CPU.Cores())
	}
	if math.Abs((idle - p.CPU.IdlePower).Watts()) > 1e-9 {
		t.Errorf("idle power not conserved: %v vs %v", idle, p.CPU.IdlePower)
	}
	if math.Abs((dyn - p.CPU.MaxDynPower).Watts()) > 1e-9 {
		t.Errorf("dynamic power not conserved")
	}
	// Frequency range shared.
	if parts[0].FMin != p.CPU.FMin || parts[0].FNom != p.CPU.FNom {
		t.Error("frequency range changed")
	}
}

func TestSplitDRAMSpecConserves(t *testing.T) {
	p := hw.IvyBridge()
	parts := SplitDRAMSpec(p.DRAM, 2)
	var bw units.Bandwidth
	var bg units.Power
	for _, s := range parts {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		bw += s.PeakBandwidth()
		bg += s.BackgroundPower
	}
	if math.Abs((bw - p.DRAM.PeakBandwidth()).BytesPerSecond()) > 1 {
		t.Errorf("bandwidth not conserved: %v vs %v", bw, p.DRAM.PeakBandwidth())
	}
	if math.Abs((bg - p.DRAM.BackgroundPower).Watts()) > 1e-9 {
		t.Errorf("background not conserved")
	}
}

// TestAggregateEquivalence validates the paper's simplification: an even
// node-budget split over per-socket RAPL domains behaves exactly like the
// single aggregate component the rest of the repository models, for
// balanced workloads.
func TestAggregateEquivalence(t *testing.T) {
	p := hw.IvyBridge()
	agg := NewController(p.CPU, p.DRAM)
	multi, err := NewMultiController(p)
	if err != nil {
		t.Fatal(err)
	}
	f := func(capRaw, actRaw float64) bool {
		cap := units.Power(50 + math.Abs(math.Mod(capRaw, 180)))
		act := 0.2 + 0.75*math.Abs(math.Mod(actRaw, 1))
		if err := agg.SetLimit(DomainPackage, cap); err != nil {
			return false
		}
		if err := multi.SetNodeLimits(cap, 0); err != nil {
			return false
		}
		aggState := agg.ActuatePackage(act)
		aggPower := agg.PackagePower(aggState, act)
		states, multiPower := multi.ActuateNode(act)
		// Same P-state and duty on both sockets, equal to the aggregate.
		for _, s := range states {
			if s.Freq != aggState.Freq || s.Duty != aggState.Duty {
				return false
			}
		}
		return units.AlmostEqual(aggPower.Watts(), multiPower.Watts(), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggregateEquivalenceDRAM(t *testing.T) {
	p := hw.IvyBridge()
	agg := NewController(p.CPU, p.DRAM)
	multi, err := NewMultiController(p)
	if err != nil {
		t.Fatal(err)
	}
	for cap := units.Power(70); cap <= 130; cap += 6 {
		if err := agg.SetLimit(DomainDRAM, cap); err != nil {
			t.Fatal(err)
		}
		if err := multi.SetNodeLimits(0, cap); err != nil {
			t.Fatal(err)
		}
		for _, rf := range []float64{0, 0.5, 1} {
			a := agg.DRAMBandwidthCeiling(rf)
			m := multi.NodeDRAMBandwidthCeiling(rf)
			if !units.AlmostEqual(a.BytesPerSecond(), m.BytesPerSecond(), 1e-6) {
				t.Errorf("cap %v rf %v: aggregate %v vs multi %v", cap, rf, a, m)
			}
		}
	}
}

func TestMultiControllerBasics(t *testing.T) {
	p := hw.IvyBridge()
	multi, err := NewMultiController(p)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Sockets() != 2 {
		t.Errorf("sockets = %d", multi.Sockets())
	}
	if multi.Socket(0) == nil || multi.Socket(1) == nil {
		t.Error("socket controllers missing")
	}
	// Disabled caps propagate.
	if err := multi.SetNodeLimits(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, enabled := multi.Socket(0).Limit(DomainPackage); enabled {
		t.Error("zero cap should disable per-socket limiting")
	}
	// GPU platforms rejected.
	xp := hw.TitanXP()
	if _, err := NewMultiController(xp); err == nil {
		t.Error("GPU platform accepted")
	}
}
