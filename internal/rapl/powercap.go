package rapl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/units"
)

// PowercapFS emulates the Linux powercap sysfs interface
// (/sys/class/powercap/intel-rapl:*) on top of the controller, so tools
// written against the kernel ABI — reading microjoule energy counters and
// writing microwatt limits — work unchanged against the simulator.
//
// Exposed zones mirror the kernel's layout: "intel-rapl:0" is the package
// domain and "intel-rapl:0:0" its DRAM subzone. Each zone has the files
// name, enabled, energy_uj, max_energy_range_uj,
// constraint_0_power_limit_uw, and constraint_0_time_window_us.
type PowercapFS struct {
	ctrl *Controller
}

// NewPowercapFS wraps a controller in the sysfs facade.
func NewPowercapFS(ctrl *Controller) *PowercapFS {
	return &PowercapFS{ctrl: ctrl}
}

// zoneDomain maps a zone path component to its RAPL domain.
func zoneDomain(zone string) (Domain, error) {
	switch zone {
	case "intel-rapl:0":
		return DomainPackage, nil
	case "intel-rapl:0:0":
		return DomainDRAM, nil
	default:
		return 0, fmt.Errorf("powercap: no such zone %q", zone)
	}
}

// zoneName returns the kernel's name-file content for a zone.
func zoneName(d Domain) string {
	if d == DomainDRAM {
		return "dram"
	}
	return "package-0"
}

// List returns every file path the facade serves, sorted.
func (p *PowercapFS) List() []string {
	var out []string
	for _, zone := range []string{"intel-rapl:0", "intel-rapl:0:0"} {
		for _, f := range []string{
			"name", "enabled", "energy_uj", "max_energy_range_uj",
			"constraint_0_power_limit_uw", "constraint_0_time_window_us",
		} {
			out = append(out, zone+"/"+f)
		}
	}
	sort.Strings(out)
	return out
}

// Read returns the content of a powercap file (without trailing newline).
func (p *PowercapFS) Read(path string) (string, error) {
	zone, file, err := splitZonePath(path)
	if err != nil {
		return "", err
	}
	d, err := zoneDomain(zone)
	if err != nil {
		return "", err
	}
	switch file {
	case "name":
		return zoneName(d), nil
	case "enabled":
		if _, enabled := p.ctrl.Limit(d); enabled {
			return "1", nil
		}
		return "0", nil
	case "energy_uj":
		uj := p.ctrl.Energy(d).Joules() * 1e6
		return strconv.FormatUint(uint64(uj), 10), nil
	case "max_energy_range_uj":
		// The 32-bit counter wraps at 2^32 energy units.
		return strconv.FormatUint(uint64(float64(1<<32)*EnergyUnit*1e6), 10), nil
	case "constraint_0_power_limit_uw":
		limit, enabled := p.ctrl.Limit(d)
		if !enabled {
			return "0", nil
		}
		return strconv.FormatUint(uint64(limit.Watts()*1e6), 10), nil
	case "constraint_0_time_window_us":
		addr := MSRPkgPowerLimit
		if d == DomainDRAM {
			addr = MSRDramPowerLimit
		}
		reg, err := p.ctrl.MSRs().Read(addr)
		if err != nil {
			return "", err
		}
		_, window, enabled := DecodeLimit(reg)
		if !enabled {
			return "0", nil
		}
		return strconv.FormatUint(uint64(window*1e6), 10), nil
	default:
		return "", fmt.Errorf("powercap: no such file %q in zone %q", file, zone)
	}
}

// Write stores a value into a writable powercap file. Only the power
// limit and time window are writable, as in the kernel.
func (p *PowercapFS) Write(path, value string) error {
	zone, file, err := splitZonePath(path)
	if err != nil {
		return err
	}
	d, err := zoneDomain(zone)
	if err != nil {
		return err
	}
	value = strings.TrimSpace(value)
	switch file {
	case "constraint_0_power_limit_uw":
		uw, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			return fmt.Errorf("powercap: bad microwatt value %q: %w", value, err)
		}
		return p.ctrl.SetLimit(d, units.Power(float64(uw)/1e6))
	case "constraint_0_time_window_us":
		us, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			return fmt.Errorf("powercap: bad microsecond value %q: %w", value, err)
		}
		limit, enabled := p.ctrl.Limit(d)
		if !enabled {
			return fmt.Errorf("powercap: set a power limit before its window")
		}
		return p.ctrl.SetLimitWindow(d, limit, time.Duration(us)*time.Microsecond)
	case "name", "enabled", "energy_uj", "max_energy_range_uj":
		return fmt.Errorf("powercap: %q is read-only", file)
	default:
		return fmt.Errorf("powercap: no such file %q in zone %q", file, zone)
	}
}

func splitZonePath(path string) (zone, file string, err error) {
	path = strings.TrimPrefix(path, "/sys/class/powercap/")
	parts := strings.Split(path, "/")
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return "", "", fmt.Errorf("powercap: malformed path %q (want zone/file)", path)
	}
	return parts[0], parts[1], nil
}
