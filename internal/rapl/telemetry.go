package rapl

import "repro/internal/telemetry"

// Package-level instrument handles for the resilient control path. All
// are nil until Instrument is called, and every update site is a
// nil-safe no-op, so the uninstrumented hot path (one cap write per
// control step) costs nothing and allocates nothing.
var (
	mCapWrites          *telemetry.Counter
	mCapRetries         *telemetry.Counter
	mReadbackMismatches *telemetry.Counter
	mCapExhausted       *telemetry.Counter
	mBackoffSeconds     *telemetry.Histogram
	mWatchdogEngage     *telemetry.Counter
	mWatchdogRelease    *telemetry.Counter
	mWatchdogEngaged    *telemetry.Gauge
	mWatchdogOvershoot  *telemetry.Histogram
)

// Instrument registers the package's metrics on r and points the
// resilient-controller and watchdog hot paths at them. Counters
// aggregate across every controller and watchdog in the process (one
// node loop in practice). Passing nil disables instrumentation again.
// Call before starting concurrent control loops.
func Instrument(r *telemetry.Registry) {
	mCapWrites = r.Counter("rapl_cap_writes_total",
		"Cap writes accepted by the resilient controller.")
	mCapRetries = r.Counter("rapl_cap_write_retries_total",
		"Re-attempts after failed or unverified cap writes.")
	mReadbackMismatches = r.Counter("rapl_readback_mismatches_total",
		"Cap writes that reported success but did not take effect.")
	mCapExhausted = r.Counter("rapl_cap_writes_exhausted_total",
		"Cap writes that failed even after the full retry budget.")
	mBackoffSeconds = r.Histogram("rapl_backoff_seconds",
		"Backoff imposed before cap-write retries.", telemetry.DurationBuckets)
	mWatchdogEngage = r.Counter("rapl_watchdog_engagements_total",
		"Watchdog failsafe clamp activations.")
	mWatchdogRelease = r.Counter("rapl_watchdog_releases_total",
		"Watchdog failsafe clamp releases.")
	mWatchdogEngaged = r.Gauge("rapl_watchdog_engaged",
		"1 while the watchdog failsafe clamp is in force.")
	mWatchdogOvershoot = r.Histogram("rapl_watchdog_overshoot_watts",
		"Observed excess of windowed power over the defended bound.", telemetry.PowerBuckets)
}
