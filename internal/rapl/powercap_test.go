package rapl

import (
	"math"
	"strconv"
	"testing"
	"time"

	"repro/internal/hw"
)

func newFS() (*PowercapFS, *Controller) {
	p := hw.IvyBridge()
	ctrl := NewController(p.CPU, p.DRAM)
	return NewPowercapFS(ctrl), ctrl
}

func TestPowercapListsKernelLayout(t *testing.T) {
	fs, _ := newFS()
	paths := fs.List()
	if len(paths) != 12 {
		t.Fatalf("file count = %d, want 12", len(paths))
	}
	want := map[string]bool{
		"intel-rapl:0/name":                          true,
		"intel-rapl:0/constraint_0_power_limit_uw":   true,
		"intel-rapl:0:0/energy_uj":                   true,
		"intel-rapl:0:0/constraint_0_time_window_us": true,
	}
	seen := map[string]bool{}
	for _, p := range paths {
		seen[p] = true
	}
	for p := range want {
		if !seen[p] {
			t.Errorf("missing path %q", p)
		}
	}
}

func TestPowercapNamesAndEnabled(t *testing.T) {
	fs, ctrl := newFS()
	if got, _ := fs.Read("intel-rapl:0/name"); got != "package-0" {
		t.Errorf("package name = %q", got)
	}
	if got, _ := fs.Read("intel-rapl:0:0/name"); got != "dram" {
		t.Errorf("dram name = %q", got)
	}
	if got, _ := fs.Read("intel-rapl:0/enabled"); got != "0" {
		t.Errorf("initial enabled = %q", got)
	}
	if err := ctrl.SetLimit(DomainPackage, 120); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.Read("intel-rapl:0/enabled"); got != "1" {
		t.Errorf("enabled after limit = %q", got)
	}
}

func TestPowercapLimitRoundTrip(t *testing.T) {
	fs, ctrl := newFS()
	// Write 120 W as microwatts through the ABI.
	if err := fs.Write("intel-rapl:0/constraint_0_power_limit_uw", "120000000"); err != nil {
		t.Fatal(err)
	}
	limit, enabled := ctrl.Limit(DomainPackage)
	if !enabled || math.Abs(limit.Watts()-120) > PowerUnit {
		t.Errorf("limit = %v enabled=%v", limit, enabled)
	}
	// Read it back through the ABI.
	got, err := fs.Read("intel-rapl:0/constraint_0_power_limit_uw")
	if err != nil {
		t.Fatal(err)
	}
	uw, _ := strconv.ParseUint(got, 10, 64)
	if math.Abs(float64(uw)/1e6-120) > PowerUnit {
		t.Errorf("read back %s uW", got)
	}
	// The sysfs prefix is accepted too.
	if err := fs.Write("/sys/class/powercap/intel-rapl:0:0/constraint_0_power_limit_uw", "90000000"); err != nil {
		t.Fatal(err)
	}
	if limit, _ := ctrl.Limit(DomainDRAM); math.Abs(limit.Watts()-90) > PowerUnit {
		t.Errorf("dram limit = %v", limit)
	}
}

func TestPowercapTimeWindow(t *testing.T) {
	fs, _ := newFS()
	// Window before limit is an error, matching the facade's contract.
	if err := fs.Write("intel-rapl:0/constraint_0_time_window_us", "1000000"); err == nil {
		t.Error("window write before limit accepted")
	}
	if err := fs.Write("intel-rapl:0/constraint_0_power_limit_uw", "100000000"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("intel-rapl:0/constraint_0_time_window_us", "1000000"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("intel-rapl:0/constraint_0_time_window_us")
	if err != nil {
		t.Fatal(err)
	}
	us, _ := strconv.ParseUint(got, 10, 64)
	if math.Abs(float64(us)-1e6) > 1e5 {
		t.Errorf("window = %s us, want ~1000000", got)
	}
}

func TestPowercapEnergyCounter(t *testing.T) {
	fs, ctrl := newFS()
	ctrl.AccumulateEnergy(100, 50, 2*time.Second)
	got, err := fs.Read("intel-rapl:0/energy_uj")
	if err != nil {
		t.Fatal(err)
	}
	uj, _ := strconv.ParseUint(got, 10, 64)
	if math.Abs(float64(uj)-200e6) > 1e4 {
		t.Errorf("package energy = %s uJ, want ~200000000", got)
	}
	got, _ = fs.Read("intel-rapl:0:0/energy_uj")
	uj, _ = strconv.ParseUint(got, 10, 64)
	if math.Abs(float64(uj)-100e6) > 1e4 {
		t.Errorf("dram energy = %s uJ", got)
	}
	// The wrap range matches the 32-bit counter.
	got, _ = fs.Read("intel-rapl:0/max_energy_range_uj")
	uj, _ = strconv.ParseUint(got, 10, 64)
	if math.Abs(float64(uj)-float64(1<<32)*EnergyUnit*1e6) > 1e6 {
		t.Errorf("max energy range = %s", got)
	}
}

func TestPowercapErrors(t *testing.T) {
	fs, _ := newFS()
	if _, err := fs.Read("intel-rapl:7/name"); err == nil {
		t.Error("unknown zone read accepted")
	}
	if _, err := fs.Read("intel-rapl:0/nope"); err == nil {
		t.Error("unknown file read accepted")
	}
	if _, err := fs.Read("plainpath"); err == nil {
		t.Error("malformed path accepted")
	}
	if err := fs.Write("intel-rapl:0/energy_uj", "5"); err == nil {
		t.Error("read-only file write accepted")
	}
	if err := fs.Write("intel-rapl:0/constraint_0_power_limit_uw", "watts"); err == nil {
		t.Error("non-numeric value accepted")
	}
	if err := fs.Write("intel-rapl:0/bogus", "1"); err == nil {
		t.Error("unknown file write accepted")
	}
	if err := fs.Write("intel-rapl:9/constraint_0_power_limit_uw", "1"); err == nil {
		t.Error("unknown zone write accepted")
	}
}
