package rapl

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/units"
)

// LimitSetter is the cap-programming surface of a RAPL controller: what
// the resilience layer needs from the hardware, and what fault injectors
// interpose on. *Controller satisfies it.
type LimitSetter interface {
	SetLimit(d Domain, cap units.Power) error
	Limit(d Domain) (units.Power, bool)
}

var _ LimitSetter = (*Controller)(nil)

// ErrCapWriteExhausted is wrapped by SetLimit errors from the resilient
// controller after the retry budget is spent.
var ErrCapWriteExhausted = errors.New("rapl: cap write retries exhausted")

// RetryPolicy bounds how a failed cap write is retried: exponential
// backoff from Base to Max with deterministic, seeded jitter. The zero
// value retries nothing (one attempt, no backoff).
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first write.
	MaxRetries int
	// Base is the backoff before the first retry; it doubles per retry.
	Base time.Duration
	// Max caps the per-retry backoff. Zero means no cap.
	Max time.Duration
	// Jitter is the fraction of each backoff randomized into
	// [1-Jitter, 1+Jitter], derived deterministically from Seed so two
	// runs of a fault replay back off identically.
	Jitter float64
	// Seed keys the jitter sequence.
	Seed uint64
}

// DefaultRetryPolicy is the policy the faults experiments use: 4 retries
// from 1 ms, capped at 20 ms, 25% jitter.
func DefaultRetryPolicy(seed uint64) RetryPolicy {
	return RetryPolicy{MaxRetries: 4, Base: time.Millisecond, Max: 20 * time.Millisecond, Jitter: 0.25, Seed: seed}
}

// Backoff returns the delay before retry attempt (1-based). It is a pure
// function of the policy, so backoff schedules replay exactly.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	if attempt < 1 || p.Base <= 0 {
		return 0
	}
	d := p.Base
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.Max > 0 && d >= p.Max {
			d = p.Max
			break
		}
	}
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	if p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		// splitmix64 of (seed, attempt) -> uniform in [1-j, 1+j].
		z := p.Seed + uint64(attempt)*0x9E3779B97F4A7C15
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		u := float64((z^(z>>31))>>11) / (1 << 53)
		d = time.Duration(float64(d) * (1 - j + 2*j*u))
	}
	return d
}

// RetryStats counts what the resilient layer did, for the fault reports.
type RetryStats struct {
	// Writes is the number of SetLimit calls accepted.
	Writes int
	// Retries is the number of re-attempts across all writes.
	Retries int
	// ReadbackMismatches counts writes that reported success but did not
	// take effect (stuck actuator caught by readback).
	ReadbackMismatches int
	// Exhausted counts writes that failed even after all retries.
	Exhausted int
	// BackoffTotal is the summed backoff the policy imposed (virtual
	// time: the simulator accounts for it, nothing sleeps).
	BackoffTotal time.Duration
}

// ResilientController hardens cap programming against actuator faults:
// every SetLimit is verified by reading the limit back and retried with
// bounded, deterministic backoff when the write errors or did not take
// effect. It satisfies LimitSetter, so it stacks on a *Controller
// directly or on a fault-injecting wrapper.
type ResilientController struct {
	target LimitSetter
	policy RetryPolicy
	stats  RetryStats
}

// NewResilient wraps target with the given retry policy.
func NewResilient(target LimitSetter, policy RetryPolicy) *ResilientController {
	return &ResilientController{target: target, policy: policy}
}

// Stats returns a snapshot of the retry counters.
func (r *ResilientController) Stats() RetryStats { return r.stats }

// verified reports whether the programmed limit matches the requested
// cap, modulo the register's fixed-point quantization (one PowerUnit).
func (r *ResilientController) verified(d Domain, cap units.Power) bool {
	got, enabled := r.target.Limit(d)
	if cap <= 0 {
		return !enabled
	}
	if !enabled {
		return false
	}
	diff := got.Watts() - cap.Watts()
	if diff < 0 {
		diff = -diff
	}
	return diff <= PowerUnit+1e-9
}

// SetLimit programs a cap, verifying by readback and retrying per the
// policy. The returned error wraps ErrCapWriteExhausted (and the last
// underlying write error, if any) when the retry budget is spent.
func (r *ResilientController) SetLimit(d Domain, cap units.Power) error {
	r.stats.Writes++
	mCapWrites.Inc()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			r.stats.Retries++
			mCapRetries.Inc()
			backoff := r.policy.Backoff(attempt)
			r.stats.BackoffTotal += backoff
			mBackoffSeconds.Observe(backoff.Seconds())
		}
		err := r.target.SetLimit(d, cap)
		if err == nil {
			if r.verified(d, cap) {
				return nil
			}
			r.stats.ReadbackMismatches++
			mReadbackMismatches.Inc()
			lastErr = fmt.Errorf("rapl: %v cap write to %v reported success but did not take effect", d, cap)
		} else {
			lastErr = err
		}
		if attempt >= r.policy.MaxRetries {
			break
		}
	}
	r.stats.Exhausted++
	mCapExhausted.Inc()
	return fmt.Errorf("rapl: set %v limit to %v after %d attempts: %w: %w",
		d, cap, r.policy.MaxRetries+1, ErrCapWriteExhausted, lastErr)
}

// Limit reads back the programmed limit.
func (r *ResilientController) Limit(d Domain) (units.Power, bool) {
	return r.target.Limit(d)
}

// FailsafeSplit is a precomputed emergency allocation: the caps the
// watchdog clamps both domains to when the node shows sustained budget
// overshoot. It is computed once, up front, from hardware constants only
// — when the watchdog fires, no profile, sensor, or optimizer needs to
// be trusted.
type FailsafeSplit struct {
	Proc, Mem units.Power
}

// Total returns the failsafe node total.
func (f FailsafeSplit) Total() units.Power { return f.Proc + f.Mem }

// failsafeGuardFrac is the fraction of the bound the failsafe split
// holds back, absorbing actuator quantization and the DRAM floor's
// softness.
const failsafeGuardFrac = 0.05

// PrecomputeFailsafe derives the failsafe split for a node bound from
// the hardware specs: memory gets its unavoidable background power plus
// the minimum throttle headroom (the least that keeps it controllable),
// the processor gets the rest of 95% of the bound, floored at its idle
// power. The split is deliberately conservative — its job is to be
// always safe and always actuatable, not fast.
func PrecomputeFailsafe(cpu *hw.CPUSpec, dram *hw.DRAMSpec, bound units.Power) FailsafeSplit {
	usable := units.Power(bound.Watts() * (1 - failsafeGuardFrac))
	mem := dram.BackgroundPower + dram.MinThrottleHeadroom
	proc := usable - mem
	if proc < cpu.IdlePower {
		proc = cpu.IdlePower
	}
	return FailsafeSplit{Proc: proc, Mem: mem}
}

// Watchdog detects sustained violation of the node power bound from the
// windowed power samples it is fed and clamps both domains to the
// failsafe split. It is the last line of defense when cap writes are
// silently failing or sensors lied long enough for a bad allocation to
// be programmed: the paper's "never exceed P_b" contract, enforced
// even when the normal control path is compromised.
type Watchdog struct {
	// Bound is the node power bound P_b being defended.
	Bound units.Power
	// Tolerance is the guard band above Bound that does not count as
	// overshoot (actuator quantization, window transients).
	Tolerance units.Power
	// TripAfter is the number of consecutive overshoot samples that
	// engage the failsafe.
	TripAfter int
	// ReleaseAfter is the number of consecutive compliant samples that
	// release it again.
	ReleaseAfter int
	// Failsafe is the precomputed clamp allocation.
	Failsafe FailsafeSplit

	ctrl LimitSetter

	engaged     bool
	over, under int

	// Engagements counts failsafe activations; WorstOvershoot is the
	// largest observed excess over Bound.
	Engagements    int
	WorstOvershoot units.Power
}

// NewWatchdog returns a watchdog defending bound through ctrl with the
// default trip/release hysteresis (3 samples to trip, 5 to release).
func NewWatchdog(ctrl LimitSetter, bound, tolerance units.Power, failsafe FailsafeSplit) *Watchdog {
	return &Watchdog{
		Bound: bound, Tolerance: tolerance,
		TripAfter: 3, ReleaseAfter: 5,
		Failsafe: failsafe, ctrl: ctrl,
	}
}

// Engaged reports whether the failsafe clamp is currently in force.
func (wd *Watchdog) Engaged() bool { return wd.engaged }

// clamp programs the failsafe split on both domains.
func (wd *Watchdog) clamp() error {
	if err := wd.ctrl.SetLimit(DomainPackage, wd.Failsafe.Proc); err != nil {
		return fmt.Errorf("rapl: watchdog clamp package: %w", err)
	}
	if err := wd.ctrl.SetLimit(DomainDRAM, wd.Failsafe.Mem); err != nil {
		return fmt.Errorf("rapl: watchdog clamp dram: %w", err)
	}
	return nil
}

// Observe feeds one windowed-average power sample to the watchdog and
// returns whether the failsafe engaged or released on this sample. A
// dropped sensor reading should simply not be fed: the watchdog then
// holds state, which is the conservative behaviour (an engaged clamp
// stays engaged while the node is blind).
func (wd *Watchdog) Observe(windowAvg units.Power) (changed bool, err error) {
	if excess := windowAvg - wd.Bound; excess > wd.WorstOvershoot {
		wd.WorstOvershoot = excess
	}
	if windowAvg > wd.Bound+wd.Tolerance {
		mWatchdogOvershoot.Observe((windowAvg - wd.Bound).Watts())
		wd.over++
		wd.under = 0
		if !wd.engaged && wd.over >= wd.TripAfter {
			if err := wd.clamp(); err != nil {
				// Clamp writes themselves can fail; stay un-engaged so
				// the next sample re-attempts.
				return false, err
			}
			wd.engaged = true
			wd.Engagements++
			mWatchdogEngage.Inc()
			mWatchdogEngaged.Set(1)
			return true, nil
		}
		return false, nil
	}
	if windowAvg <= wd.Bound {
		wd.under++
		wd.over = 0
		if wd.engaged && wd.under >= wd.ReleaseAfter {
			// Release only clears the clamp state; the caller re-programs
			// the allocation it actually wants.
			wd.engaged = false
			mWatchdogRelease.Inc()
			mWatchdogEngaged.Set(0)
			return true, nil
		}
	}
	return false, nil
}
