package rapl

import (
	"errors"
	"fmt"
	"strconv"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/units"
)

// fakeSetter is a scriptable LimitSetter: it can fail the first N writes,
// silently drop (stick) the next M, and stores the rest.
type fakeSetter struct {
	failFirst  int
	stuckFirst int
	calls      int
	limits     map[Domain]units.Power
	enabled    map[Domain]bool
}

func newFakeSetter() *fakeSetter {
	return &fakeSetter{limits: map[Domain]units.Power{}, enabled: map[Domain]bool{}}
}

var errFakeWrite = errors.New("fake: write failed")

func (f *fakeSetter) SetLimit(d Domain, cap units.Power) error {
	f.calls++
	if f.failFirst > 0 {
		f.failFirst--
		return fmt.Errorf("fake: attempt %d: %w", f.calls, errFakeWrite)
	}
	if f.stuckFirst > 0 {
		f.stuckFirst--
		return nil // reported success, not stored
	}
	f.limits[d] = cap
	f.enabled[d] = cap > 0
	return nil
}

func (f *fakeSetter) Limit(d Domain) (units.Power, bool) {
	return f.limits[d], f.enabled[d]
}

func TestRetryPolicyBackoff(t *testing.T) {
	tests := []struct {
		name   string
		policy RetryPolicy
		checks func(t *testing.T, p RetryPolicy)
	}{
		{
			name:   "zero policy has no backoff",
			policy: RetryPolicy{},
			checks: func(t *testing.T, p RetryPolicy) {
				for a := 0; a < 4; a++ {
					if d := p.Backoff(a); d != 0 {
						t.Fatalf("Backoff(%d) = %v, want 0", a, d)
					}
				}
			},
		},
		{
			name:   "no jitter doubles and caps",
			policy: RetryPolicy{MaxRetries: 5, Base: time.Millisecond, Max: 4 * time.Millisecond},
			checks: func(t *testing.T, p RetryPolicy) {
				want := []time.Duration{
					time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond,
				}
				for i, w := range want {
					if d := p.Backoff(i + 1); d != w {
						t.Fatalf("Backoff(%d) = %v, want %v", i+1, d, w)
					}
				}
			},
		},
		{
			name:   "jitter stays within band",
			policy: RetryPolicy{MaxRetries: 8, Base: 10 * time.Millisecond, Max: time.Second, Jitter: 0.25, Seed: 7},
			checks: func(t *testing.T, p RetryPolicy) {
				for a := 1; a <= 8; a++ {
					base := 10 * time.Millisecond << (a - 1)
					if base > time.Second {
						base = time.Second
					}
					d := p.Backoff(a)
					lo := time.Duration(float64(base) * 0.75)
					hi := time.Duration(float64(base) * 1.25)
					if d < lo || d > hi {
						t.Fatalf("Backoff(%d) = %v outside [%v, %v]", a, d, lo, hi)
					}
				}
			},
		},
		{
			name:   "jitter deterministic under fixed seed",
			policy: RetryPolicy{MaxRetries: 6, Base: time.Millisecond, Max: time.Second, Jitter: 0.5, Seed: 42},
			checks: func(t *testing.T, p RetryPolicy) {
				other := RetryPolicy{MaxRetries: 6, Base: time.Millisecond, Max: time.Second, Jitter: 0.5, Seed: 42}
				for a := 1; a <= 6; a++ {
					if p.Backoff(a) != other.Backoff(a) {
						t.Fatalf("Backoff(%d) differs across identical policies", a)
					}
				}
				reseeded := p
				reseeded.Seed = 43
				same := true
				for a := 1; a <= 6; a++ {
					if p.Backoff(a) != reseeded.Backoff(a) {
						same = false
					}
				}
				if same {
					t.Fatal("jitter sequence identical across different seeds")
				}
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) { tc.checks(t, tc.policy) })
	}
}

func TestResilientSetLimit(t *testing.T) {
	tests := []struct {
		name       string
		target     *fakeSetter
		policy     RetryPolicy
		wantErr    bool
		wantStats  func(t *testing.T, s RetryStats)
		wantStored bool
	}{
		{
			name:       "clean write needs no retry",
			target:     newFakeSetter(),
			policy:     RetryPolicy{MaxRetries: 3},
			wantStored: true,
			wantStats: func(t *testing.T, s RetryStats) {
				if s.Retries != 0 || s.Exhausted != 0 {
					t.Fatalf("stats = %+v, want no retries", s)
				}
			},
		},
		{
			name:       "transient failures retried to success",
			target:     &fakeSetter{failFirst: 2, limits: map[Domain]units.Power{}, enabled: map[Domain]bool{}},
			policy:     RetryPolicy{MaxRetries: 3, Base: time.Millisecond},
			wantStored: true,
			wantStats: func(t *testing.T, s RetryStats) {
				if s.Retries != 2 {
					t.Fatalf("Retries = %d, want 2", s.Retries)
				}
				if s.Exhausted != 0 {
					t.Fatalf("Exhausted = %d, want 0", s.Exhausted)
				}
				if s.BackoffTotal <= 0 {
					t.Fatal("BackoffTotal not accumulated")
				}
			},
		},
		{
			name:    "exhaustion after budget spent",
			target:  &fakeSetter{failFirst: 100, limits: map[Domain]units.Power{}, enabled: map[Domain]bool{}},
			policy:  RetryPolicy{MaxRetries: 3, Base: time.Millisecond},
			wantErr: true,
			wantStats: func(t *testing.T, s RetryStats) {
				if s.Retries != 3 || s.Exhausted != 1 {
					t.Fatalf("stats = %+v, want 3 retries 1 exhausted", s)
				}
			},
		},
		{
			name:    "zero-retry config fails on first error",
			target:  &fakeSetter{failFirst: 1, limits: map[Domain]units.Power{}, enabled: map[Domain]bool{}},
			policy:  RetryPolicy{},
			wantErr: true,
			wantStats: func(t *testing.T, s RetryStats) {
				if s.Retries != 0 || s.Exhausted != 1 {
					t.Fatalf("stats = %+v, want 0 retries 1 exhausted", s)
				}
			},
		},
		{
			name:       "stuck write caught by readback and retried",
			target:     &fakeSetter{stuckFirst: 2, limits: map[Domain]units.Power{}, enabled: map[Domain]bool{}},
			policy:     RetryPolicy{MaxRetries: 3, Base: time.Millisecond},
			wantStored: true,
			wantStats: func(t *testing.T, s RetryStats) {
				if s.ReadbackMismatches != 2 {
					t.Fatalf("ReadbackMismatches = %d, want 2", s.ReadbackMismatches)
				}
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			r := NewResilient(tc.target, tc.policy)
			err := r.SetLimit(DomainPackage, 100)
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error, got nil")
				}
				if !errors.Is(err, ErrCapWriteExhausted) {
					t.Fatalf("error %v does not wrap ErrCapWriteExhausted", err)
				}
			} else if err != nil {
				t.Fatalf("SetLimit: %v", err)
			}
			if tc.wantStored {
				got, enabled := tc.target.Limit(DomainPackage)
				if !enabled || got != 100 {
					t.Fatalf("target limit = %v (enabled %v), want 100", got, enabled)
				}
			}
			tc.wantStats(t, r.Stats())
		})
	}
}

func TestResilientWrapsUnderlyingError(t *testing.T) {
	target := &fakeSetter{failFirst: 100, limits: map[Domain]units.Power{}, enabled: map[Domain]bool{}}
	r := NewResilient(target, RetryPolicy{MaxRetries: 1})
	err := r.SetLimit(DomainDRAM, 50)
	if !errors.Is(err, errFakeWrite) {
		t.Fatalf("error %v does not wrap the underlying write error", err)
	}
}

func TestResilientOnRealController(t *testing.T) {
	p := hw.IvyBridge()
	ctrl := NewController(p.CPU, p.DRAM)
	r := NewResilient(ctrl, DefaultRetryPolicy(1))
	if err := r.SetLimit(DomainPackage, 120); err != nil {
		t.Fatalf("SetLimit: %v", err)
	}
	got, enabled := ctrl.Limit(DomainPackage)
	if !enabled || got < 119 || got > 121 {
		t.Fatalf("limit = %v (enabled %v), want ~120", got, enabled)
	}
	// Disabling (cap <= 0) must verify too.
	if err := r.SetLimit(DomainPackage, 0); err != nil {
		t.Fatalf("disable: %v", err)
	}
	if _, enabled := ctrl.Limit(DomainPackage); enabled {
		t.Fatal("limit still enabled after disable")
	}
}

func TestPrecomputeFailsafe(t *testing.T) {
	p := hw.IvyBridge()
	for _, bound := range []units.Power{180, 208, 240, 300} {
		fs := PrecomputeFailsafe(p.CPU, p.DRAM, bound)
		if fs.Proc < p.CPU.IdlePower {
			t.Fatalf("bound %v: failsafe proc %v below idle floor %v", bound, fs.Proc, p.CPU.IdlePower)
		}
		if fs.Mem < p.DRAM.BackgroundPower {
			t.Fatalf("bound %v: failsafe mem %v below background %v", bound, fs.Mem, p.DRAM.BackgroundPower)
		}
		// The split must leave guard headroom under the bound (unless
		// the floors themselves exceed it, which these bounds don't).
		if fs.Total() > bound {
			t.Fatalf("bound %v: failsafe total %v exceeds bound", bound, fs.Total())
		}
	}
}

func TestWatchdogEngageAndRelease(t *testing.T) {
	target := newFakeSetter()
	fs := FailsafeSplit{Proc: 90, Mem: 80}
	wd := NewWatchdog(target, 208, 5, fs)

	// Below bound: never engages.
	for i := 0; i < 10; i++ {
		if changed, err := wd.Observe(200); err != nil || changed {
			t.Fatalf("compliant sample %d: changed=%v err=%v", i, changed, err)
		}
	}
	// Exactly at bound+tolerance: still compliant by definition.
	for i := 0; i < 10; i++ {
		if changed, _ := wd.Observe(213); changed {
			t.Fatal("sample at bound+tolerance tripped the watchdog")
		}
	}
	if wd.Engaged() {
		t.Fatal("watchdog engaged without overshoot")
	}

	// Overshoot: the first TripAfter-1 samples arm it, the TripAfter-th
	// engages.
	for i := 0; i < wd.TripAfter-1; i++ {
		if changed, _ := wd.Observe(230); changed {
			t.Fatalf("engaged after only %d overshoot samples", i+1)
		}
	}
	changed, err := wd.Observe(230)
	if err != nil || !changed || !wd.Engaged() {
		t.Fatalf("watchdog did not engage on sample %d: changed=%v err=%v", wd.TripAfter, changed, err)
	}
	if got, _ := target.Limit(DomainPackage); got != fs.Proc {
		t.Fatalf("package clamp = %v, want %v", got, fs.Proc)
	}
	if got, _ := target.Limit(DomainDRAM); got != fs.Mem {
		t.Fatalf("dram clamp = %v, want %v", got, fs.Mem)
	}
	if wd.Engagements != 1 {
		t.Fatalf("Engagements = %d, want 1", wd.Engagements)
	}
	if wd.WorstOvershoot != 230-208 {
		t.Fatalf("WorstOvershoot = %v, want 22", wd.WorstOvershoot)
	}

	// Samples in the guard band (over bound, within tolerance) must not
	// release the clamp.
	for i := 0; i < 10; i++ {
		if changed, _ := wd.Observe(210); changed {
			t.Fatal("guard-band sample released the clamp")
		}
	}
	if !wd.Engaged() {
		t.Fatal("clamp released by guard-band samples")
	}

	// Compliant samples release it after ReleaseAfter.
	for i := 0; i < wd.ReleaseAfter-1; i++ {
		if changed, _ := wd.Observe(190); changed {
			t.Fatalf("released after only %d compliant samples", i+1)
		}
	}
	changed, _ = wd.Observe(190)
	if !changed || wd.Engaged() {
		t.Fatal("watchdog did not release after sustained compliance")
	}
}

func TestWatchdogReengagesAfterRelease(t *testing.T) {
	target := newFakeSetter()
	wd := NewWatchdog(target, 208, 5, FailsafeSplit{Proc: 90, Mem: 80})
	trip := func() {
		for i := 0; i < wd.TripAfter; i++ {
			wd.Observe(240)
		}
	}
	release := func() {
		for i := 0; i < wd.ReleaseAfter; i++ {
			wd.Observe(200)
		}
	}
	trip()
	release()
	trip()
	if wd.Engagements != 2 {
		t.Fatalf("Engagements = %d, want 2", wd.Engagements)
	}
}

func TestWatchdogClampFailureRetriesNextSample(t *testing.T) {
	target := &fakeSetter{failFirst: 100, limits: map[Domain]units.Power{}, enabled: map[Domain]bool{}}
	wd := NewWatchdog(target, 208, 5, FailsafeSplit{Proc: 90, Mem: 80})
	var clampErr error
	for i := 0; i < wd.TripAfter; i++ {
		_, clampErr = wd.Observe(240)
	}
	if clampErr == nil {
		t.Fatal("clamp through a dead actuator reported no error")
	}
	if wd.Engaged() {
		t.Fatal("watchdog claims engaged though the clamp never landed")
	}
	// Actuator comes back: the next overshoot sample re-attempts.
	target.failFirst = 0
	if _, err := wd.Observe(240); err != nil {
		t.Fatalf("re-attempt: %v", err)
	}
	if !wd.Engaged() {
		t.Fatal("watchdog did not engage once the actuator recovered")
	}
}

// Satellite: errors.Is/As assertions on the wrapped rapl error chain.
func TestErrorWrapping(t *testing.T) {
	rf := NewRegisterFile()
	if _, err := rf.Read(0x123); !errors.Is(err, ErrUnimplementedMSR) {
		t.Fatalf("Read(0x123) = %v, want ErrUnimplementedMSR", err)
	}
	if err := rf.Write(MSRRaplPowerUnit, 1); !errors.Is(err, ErrReadOnlyMSR) {
		t.Fatalf("Write(unit reg) = %v, want ErrReadOnlyMSR", err)
	}
	if err := rf.Write(0x123, 1); !errors.Is(err, ErrUnimplementedMSR) {
		t.Fatalf("Write(0x123) = %v, want ErrUnimplementedMSR", err)
	}

	p := hw.IvyBridge()
	fs := NewPowercapFS(NewController(p.CPU, p.DRAM))
	err := fs.Write("intel-rapl:0/constraint_0_power_limit_uw", "not-a-number")
	var numErr *strconv.NumError
	if !errors.As(err, &numErr) {
		t.Fatalf("powercap write error %v does not wrap *strconv.NumError", err)
	}
}
