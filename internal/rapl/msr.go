// Package rapl emulates Intel's Running Average Power Limit interface for
// the simulator: the MSR-visible register surface (power limit and energy
// status registers with their fixed-point unit encodings), the actuation
// logic that picks a P-state, then a T-state, to keep a domain under its
// cap (the mechanism the paper's Section 3.3 uses to explain the
// allocation-scenario categories), and DRAM bandwidth throttling.
//
// The register encodings follow the Intel SDM Vol. 3B conventions: power
// in 1/8 W units, energy in ~15.3 uJ units, time in ~976 us units, with
// 32-bit wrap-around energy counters.
package rapl

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Sentinel errors for MSR access faults, matchable with errors.Is.
var (
	// ErrUnimplementedMSR is returned when reading or writing an address
	// the emulation does not back (a real rdmsr/wrmsr would #GP).
	ErrUnimplementedMSR = errors.New("unimplemented MSR")
	// ErrReadOnlyMSR is returned when writing a read-only register.
	ErrReadOnlyMSR = errors.New("register is read-only")
)

// MSR addresses for the registers the emulation exposes, matching the
// Intel SDM assignments.
const (
	MSRRaplPowerUnit    uint32 = 0x606
	MSRPkgPowerLimit    uint32 = 0x610
	MSRPkgEnergyStatus  uint32 = 0x611
	MSRDramPowerLimit   uint32 = 0x618
	MSRDramEnergyStatus uint32 = 0x619
)

// Fixed-point unit scales encoded in MSR_RAPL_POWER_UNIT: power in 1/8 W,
// energy in 1/65536 J (~15.3 uJ), time in 1/1024 s (~976 us).
const (
	powerUnitBits  = 3  // 2^-3 W
	energyUnitBits = 16 // 2^-16 J
	timeUnitBits   = 10 // 2^-10 s
)

// PowerUnit is the wattage of one power-limit LSB.
const PowerUnit = 1.0 / (1 << powerUnitBits)

// EnergyUnit is the joules of one energy-counter LSB.
const EnergyUnit = 1.0 / (1 << energyUnitBits)

// TimeUnit is the seconds of one time-window LSB.
const TimeUnit = 1.0 / (1 << timeUnitBits)

// Bit layout of the power-limit registers (lower 32 bits; the package
// register has a second limit in the upper half which the emulation
// ignores, as the experiments only program limit #1).
const (
	limitEnableBit = 1 << 15
	limitClampBit  = 1 << 16
	powerMask      = 0x7FFF
	windowShift    = 17
	windowMask     = 0x7F
)

// RegisterFile is a concurrency-safe emulated MSR space. Only the RAPL
// registers are backed; other addresses read as zero and reject writes,
// mirroring the #GP a real rdmsr/wrmsr of an unimplemented MSR raises.
type RegisterFile struct {
	mu   sync.Mutex
	regs map[uint32]uint64
}

// NewRegisterFile returns a register file with the RAPL unit register
// initialized to the standard unit encoding.
func NewRegisterFile() *RegisterFile {
	rf := &RegisterFile{regs: map[uint32]uint64{}}
	rf.regs[MSRRaplPowerUnit] = powerUnitBits | energyUnitBits<<8 | timeUnitBits<<16
	rf.regs[MSRPkgPowerLimit] = 0
	rf.regs[MSRDramPowerLimit] = 0
	rf.regs[MSRPkgEnergyStatus] = 0
	rf.regs[MSRDramEnergyStatus] = 0
	return rf
}

// Read returns the value of the MSR at addr.
func (rf *RegisterFile) Read(addr uint32) (uint64, error) {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	v, ok := rf.regs[addr]
	if !ok {
		return 0, fmt.Errorf("rapl: rdmsr 0x%x: %w", addr, ErrUnimplementedMSR)
	}
	return v, nil
}

// Write stores value to the MSR at addr. The unit and energy status
// registers are read-only, as on real hardware.
func (rf *RegisterFile) Write(addr uint32, value uint64) error {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	switch addr {
	case MSRPkgPowerLimit, MSRDramPowerLimit:
		rf.regs[addr] = value
		return nil
	case MSRRaplPowerUnit, MSRPkgEnergyStatus, MSRDramEnergyStatus:
		return fmt.Errorf("rapl: wrmsr 0x%x: %w", addr, ErrReadOnlyMSR)
	default:
		return fmt.Errorf("rapl: wrmsr 0x%x: %w", addr, ErrUnimplementedMSR)
	}
}

// addEnergy accumulates joules into a 32-bit wrapping energy counter.
func (rf *RegisterFile) addEnergy(addr uint32, joules float64) {
	if joules < 0 {
		return
	}
	rf.mu.Lock()
	defer rf.mu.Unlock()
	ticks := uint64(joules / EnergyUnit)
	rf.regs[addr] = (rf.regs[addr] + ticks) & 0xFFFFFFFF
}

// EncodeLimit packs a power limit in watts and a time window in seconds
// into the register format (limit #1, enabled, clamped).
func EncodeLimit(watts, windowSeconds float64) uint64 {
	if watts < 0 {
		watts = 0
	}
	p := uint64(watts/PowerUnit) & powerMask
	// The window is encoded as (1 + y/4) * 2^x time units; the emulation
	// uses the closest pure power of two (y=0).
	x := uint64(0)
	if windowSeconds > 0 {
		ticks := windowSeconds / TimeUnit
		if ticks > 1 {
			x = uint64(math.Round(math.Log2(ticks)))
		}
		if x > 31 {
			x = 31
		}
	}
	return p | limitEnableBit | limitClampBit | (x&windowMask)<<windowShift
}

// DecodeLimit unpacks a power-limit register into watts, window seconds,
// and the enable flag.
func DecodeLimit(reg uint64) (watts, windowSeconds float64, enabled bool) {
	watts = float64(reg&powerMask) * PowerUnit
	x := (reg >> windowShift) & windowMask
	windowSeconds = math.Exp2(float64(x)) * TimeUnit
	enabled = reg&limitEnableBit != 0
	return watts, windowSeconds, enabled
}

// EnergyJoules converts a raw energy-status register value to joules.
func EnergyJoules(reg uint64) float64 {
	return float64(reg&0xFFFFFFFF) * EnergyUnit
}
