package invariant

import (
	"fmt"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/dyncoord"
	"repro/internal/evalpool"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/units"
	"repro/internal/workload"
)

// checkEngineIdentical verifies the engine-identical invariant: every
// coordination artifact — profile, exhaustive sweep, COORD decision,
// and (on CPU) dynamic plan — computed through a parallel, memoized
// engine must be byte-identical to the serial, uncached reference, both
// with a cold cache and again with a warm one. PR 2 established this
// gate for the figure pipeline; the harness extends it to the
// coordination paths that consume the shared engine implicitly.
func checkEngineIdentical(c *collector, p hw.Platform, w workload.Workload) error {
	// A mid-range budget exercises the non-trivial regime of every
	// artifact. Derived under the serial reference so the choice itself
	// cannot depend on engine configuration.
	budget, err := midBudget(p, w)
	if err != nil {
		return err
	}

	render := func(e *evalpool.Engine) (string, error) {
		prev := evalpool.SetDefault(e)
		defer evalpool.SetDefault(prev)
		switch p.Kind {
		case hw.KindCPU:
			return renderCPUArtifacts(p, w, budget)
		default:
			return renderGPUArtifacts(p, w, budget)
		}
	}

	serial, err := render(evalpool.Serial())
	if err != nil {
		return err
	}
	par := evalpool.New(evalpool.Options{})
	cold, err := render(par)
	if err != nil {
		return err
	}
	warm, err := render(par)
	if err != nil {
		return err
	}
	c.check("engine-identical", budget, cold == serial,
		"cold parallel output diverges from serial reference")
	c.check("engine-identical", budget, warm == serial,
		"warm (memoized) output diverges from serial reference")
	return nil
}

// midBudget picks the artifact budget: the middle of the productive
// range on CPU platforms, the middle of the settable cap range on GPUs.
func midBudget(p hw.Platform, w workload.Workload) (units.Power, error) {
	if p.Kind == hw.KindGPU {
		return (p.GPU.MinCap + p.GPU.MaxCap) / 2, nil
	}
	prev := evalpool.SetDefault(evalpool.Serial())
	defer evalpool.SetDefault(prev)
	prof, err := profile.ProfileCPU(p, w)
	if err != nil {
		return 0, err
	}
	cp := prof.Critical
	b := (cp.ProductiveThreshold() + cp.CPUMax + cp.MemMax) / 2
	if floor := core.DefaultProcMin + core.DefaultMemMin; b < floor {
		b = floor
	}
	return b, nil
}

// renderCPUArtifacts computes the CPU coordination artifacts through
// the current default engine and renders them to one comparable string.
func renderCPUArtifacts(p hw.Platform, w workload.Workload, budget units.Power) (string, error) {
	prof, err := profile.ProfileCPU(p, w)
	if err != nil {
		return "", err
	}
	pb := core.NewProblem(p, w, budget)
	sweep, err := pb.Sweep()
	if err != nil {
		return "", err
	}
	d := coord.CPU(prof, budget)
	plan, err := dyncoord.PlanCPU(p, w, budget)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("profile=%+v\nsweep=%+v\ncoord=%+v\nplan=%+v", prof, sweep, d, plan), nil
}

// renderGPUArtifacts is the GPU counterpart (no dynamic planner there).
func renderGPUArtifacts(p hw.Platform, w workload.Workload, budget units.Power) (string, error) {
	prof, err := profile.ProfileGPU(p, w)
	if err != nil {
		return "", err
	}
	pb := core.NewProblem(p, w, budget)
	sweep, err := pb.Sweep()
	if err != nil {
		return "", err
	}
	d := coord.GPU(prof, budget, coord.DefaultGamma)
	return fmt.Sprintf("profile=%+v\nsweep=%+v\ncoord=%+v", prof, sweep, d), nil
}
