package invariant

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/units"
	"repro/internal/workload"
)

// poolTol is the conservation slack for cluster pool accounting: grants
// and reclaimed surplus are sums of a handful of float64 watts, so any
// deviation beyond a micro-watt means the accounting leaked or minted
// power rather than accumulated rounding error.
const poolTol = units.Power(1e-6)

// clusterFaultSpec is the hostile schedule the fault-path conservation
// check runs under: frequent node failures with quick repair plus deep,
// frequent budget shocks, so jobs are evicted and re-admitted many
// times within a single run.
const clusterFaultSpec = "node.mtbf=30,node.mttr=10,shock.mtbs=25,shock.frac=0.5,shock.len=10"

// clusterEnvelope returns the pair's productive threshold and maximum
// useful grant on a node of platform p — the same envelope the
// scheduler's admission pass uses.
func clusterEnvelope(p hw.Platform, w workload.Workload) (threshold, maxTotal units.Power, err error) {
	switch p.Kind {
	case hw.KindCPU:
		prof, err := profile.ProfileCPU(p, w)
		if err != nil {
			return 0, 0, err
		}
		return prof.Critical.ProductiveThreshold(), prof.Critical.CPUMax + prof.Critical.MemMax, nil
	case hw.KindGPU:
		prof, err := profile.ProfileGPU(p, w)
		if err != nil {
			return 0, 0, err
		}
		maxTotal := prof.TotMax
		if maxTotal > p.GPU.MaxCap {
			maxTotal = p.GPU.MaxCap
		}
		return p.GPU.MinCap, maxTotal, nil
	default:
		return 0, 0, fmt.Errorf("invariant: platform %q: unknown kind", p.Name)
	}
}

// checkClusterPair audits the cluster scheduler's power accounting for
// one (platform, workload) pair:
//
//   - pool-nonneg: Outcome.PoolLeft never goes negative — the scheduler
//     cannot commit power it does not have;
//   - pool-conservation: granted budgets plus the remaining pool equal
//     the cluster budget exactly (surplus reclaim moves power, never
//     creates it), and the fault-injected queue engine preserves the
//     same identity through every shock eviction and re-admission;
//   - expected-power-sum: Outcome.TotalExpectedPower is exactly the sum
//     of the per-placement expected draws;
//   - schedule-complete: every job is either placed or deferred.
func checkClusterPair(cfg Config, c *collector, p hw.Platform, w workload.Workload) error {
	threshold, maxTotal, err := clusterEnvelope(p, w)
	if err != nil {
		return err
	}
	nodes := []cluster.Node{
		{ID: "n1", Platform: p},
		{ID: "n2", Platform: p},
	}
	jobs := []cluster.Job{
		{ID: "j1", Workload: w},
		{ID: "j2", Workload: w},
		{ID: "j3", Workload: w},
	}
	// One scheduler per pair keeps the profile cache warm across the
	// budget grid; the budget is re-pointed per round.
	s, err := cluster.NewScheduler(maxTotal, nodes)
	if err != nil {
		return err
	}

	// The grid brackets every admission regime: below the productive
	// threshold (everything deferred) to beyond both nodes' maximum
	// useful demand (surplus reclaim on every placement).
	lo := 0.5 * threshold
	hi := 2.2*maxTotal + 20
	n := cfg.BudgetPoints
	for i := 0; i < n; i++ {
		b := lo + (hi-lo)*units.Power(i)/units.Power(n-1)
		if b <= 0 {
			continue
		}
		s.Budget = b
		out, err := s.Schedule(jobs)
		if err != nil {
			return err
		}
		c.check("pool-nonneg", b, out.PoolLeft >= -poolTol,
			"PoolLeft %v negative", out.PoolLeft)

		var granted, expected units.Power
		for _, pl := range out.Placements {
			granted += pl.Budget
			expected += pl.ExpectedPower
		}
		dev := (granted + out.PoolLeft - b).Watts()
		c.check("pool-conservation", b, math.Abs(dev) <= poolTol.Watts(),
			"granted %v + pool %v deviates from budget by %.3g W",
			granted, out.PoolLeft, dev)
		pdev := (expected - out.TotalExpectedPower).Watts()
		c.check("expected-power-sum", b, math.Abs(pdev) <= poolTol.Watts(),
			"sum of placement draws %v vs TotalExpectedPower %v (Δ %.3g W)",
			expected, out.TotalExpectedPower, pdev)
		c.check("schedule-complete", b,
			len(out.Placements)+len(out.Deferred) == len(jobs),
			"%d placed + %d deferred != %d jobs",
			len(out.Placements), len(out.Deferred), len(jobs))
	}

	// Fault path: a shock- and failure-heavy run must preserve the pool
	// identity through every eviction and re-admission, and hand the
	// whole budget back once the queue drains.
	spec, err := faults.ParseSpec(clusterFaultSpec)
	if err != nil {
		return err
	}
	b := 2.2 * maxTotal
	s.Budget = b
	timed := []cluster.TimedJob{
		{Job: jobs[0], Units: 5e11},
		{Job: jobs[1], Units: 3e11},
		{Job: jobs[2], Units: 4e11},
	}
	res, err := s.RunQueueFaulty(timed, cluster.PolicyCoord, cluster.DisciplineBackfill,
		faults.NewInjector(spec, 7), nil)
	if err != nil {
		return err
	}
	c.check("pool-conservation", b,
		res.Faults.MaxConservationError <= poolTol,
		"faulty run conservation error %.3g W (%d readmissions, %d shocks)",
		res.Faults.MaxConservationError.Watts(), res.Faults.Readmissions, res.Faults.Shocks)
	c.check("pool-nonneg", b,
		math.Abs((res.Faults.PoolLeft-b).Watts()) <= poolTol.Watts(),
		"faulty run final pool %v != budget %v", res.Faults.PoolLeft, b)
	return nil
}
