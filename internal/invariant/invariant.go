// Package invariant is the repository's cross-implementation
// correctness harness: it sweeps every (platform × workload ×
// budget-grid) combination of the seeded catalog and checks
// machine-verifiable invariants that the paper's analysis depends on.
// Where package validate checks the *simulator physics* (caps
// respected, monotone response, determinism), this package checks the
// *coordination stack built on top of it*: the COORD heuristic
// (Algorithms 1–2), the scenario classifier (Section 3.2), the
// exhaustive solver, and the memoized parallel evaluation engine.
//
// The checked invariants, with their paper justification:
//
//   - budget-bound: no strategy ever allocates more than the budget
//     (P_proc + P_mem ≤ P_b, Section 2.2's constraint), within the
//     actuator slack core.Best tolerates.
//   - alloc-finite: allocations are finite, non-negative numbers — a
//     NaN or negative member means a validation hole upstream.
//   - surplus-balance: when a decision reports StatusSurplus,
//     Alloc.Total() + Surplus == budget exactly (Section 6.2: the
//     surplus is returned to the cluster scheduler, so double counting
//     would corrupt cluster-level accounting).
//   - reject-threshold: Algorithm 1 rejects exactly the budgets below
//     P_cpu_L2 + P_mem_L2 (Section 5.1's productive threshold);
//     Algorithm 2 rejects budgets at or below the memory power floor.
//   - surplus-iff: surplus is reported exactly when the budget covers
//     the application's maximum demand (scenario I / P_tot_max).
//   - mem-range: Algorithm 2 keeps the memory budget within the card's
//     settable range [P_mem_min, P_mem_max] (Section 5.2).
//   - coord-gap: COORD's achieved performance stays within a
//     per-regime tolerance of the exhaustive-sweep best — the paper's
//     headline claim (Figure 9: "within a few percent").
//   - perfmax-monotone: the upper performance bound perf_max(P_b) is
//     non-decreasing in the budget (Section 3.1, Figures 1–2: more
//     power can never hurt the optimum).
//   - coord-monotone: COORD's achieved performance is non-decreasing
//     in the budget up to a small regime-transition tolerance.
//   - classify-stable: the scenario classifier does not flap within
//     ±ε of the seven critical powers (Section 3.2's boundaries are
//     half-open: the boundary value belongs to the upper side).
//   - classify-scale: scaling a workload's critical powers and the
//     caps by the same factor does not change the scenario — the
//     categorization is about *ratios* of demand to cap, not absolute
//     watts.
//   - engine-identical: profiles, sweeps, COORD decisions, and
//     dyncoord plans computed through the parallel, memoized engine
//     are identical to the serial, uncached reference — cold cache and
//     warm (the acceptance gate PR 2 established for figures, extended
//     to the coordination paths).
//   - pool-nonneg: the cluster scheduler never reports a negative
//     remaining pool, and the fault-injected queue engine hands the
//     whole budget back once the queue drains.
//   - pool-conservation: granted budgets plus the remaining pool equal
//     the cluster budget (surplus reclaim moves power, never creates
//     it), and the identity pool + committed grants + shock-held power
//     == budget survives every shock eviction and re-admission of the
//     fault engine.
//   - expected-power-sum: Outcome.TotalExpectedPower is exactly the
//     sum of per-placement expected draws.
//   - schedule-complete: every job submitted to a scheduling round is
//     either placed or deferred, never dropped.
//
// When Config.Tables supplies a decision-table set, four further
// invariants hold the precomputed fast path to the exact one:
// table-built, table-exact-gap, table-plan-gap, and table-monotone
// (documented in table.go).
//
// Unless Config.SkipTree is set, the harness also sweeps the
// hierarchical budget-tree invariants over a heterogeneous 2-rack
// fixture (tree.go): tree-conservation (children sum to the parent's
// share exactly, in integer quanta, at every interior node),
// tree-monotone (granted power non-decreasing everywhere, total
// performance non-decreasing across the shed-free regime),
// tree-shed-minimal (no shed leaf is re-admissible and SLA priority
// order is respected), and tree-metamorphic (sibling permutation and
// uncapped-rack splitting change nothing).
package invariant

import (
	"fmt"
	"sort"

	"repro/internal/category"
	"repro/internal/decisiontable"
	"repro/internal/hw"
	"repro/internal/units"
	"repro/internal/workload"
)

// Violation is one failed invariant check.
type Violation struct {
	// Invariant names the violated invariant (see the package comment).
	Invariant string
	// Platform and Workload name the pair under check.
	Platform, Workload string
	// Budget is the power bound the check ran at (0 when the check is
	// not budget-specific).
	Budget units.Power
	// Detail describes the specific violation.
	Detail string
}

// String renders "invariant platform/workload@budget: detail".
func (v Violation) String() string {
	at := ""
	if v.Budget != 0 {
		at = "@" + v.Budget.String()
	}
	return fmt.Sprintf("%s %s/%s%s: %s", v.Invariant, v.Platform, v.Workload, at, v.Detail)
}

// Tally counts checks and violations for one invariant.
type Tally struct {
	Checks, Violations int
}

// Report aggregates a harness run.
type Report struct {
	// Pairs is the number of (platform, workload) combinations checked.
	Pairs int
	// Checks is the total number of individual invariant assertions.
	Checks int
	// PerInvariant tallies assertions by invariant name.
	PerInvariant map[string]*Tally
	// Violations lists every failed assertion.
	Violations []Violation
}

// Invariants returns the checked invariant names in sorted order.
func (r *Report) Invariants() []string {
	names := make([]string, 0, len(r.PerInvariant))
	for n := range r.PerInvariant {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Ok reports whether the run found no violations.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// Config parameterizes a harness run. The zero value checks the full
// seeded catalog with defaults.
type Config struct {
	// Platforms and Workloads restrict the sweep; empty means the full
	// hw.AllPlatforms() / workload.AllWorkloads() sets, modern
	// platforms and phased ML-inference workloads included.
	Platforms []hw.Platform
	Workloads []workload.Workload
	// BudgetPoints is the number of budget-grid points per pair
	// (default 16). The grid always brackets every allocation regime:
	// from below the productive threshold to above the maximum demand.
	BudgetPoints int
	// Eps is the probe distance for boundary-stability checks
	// (default 1e-9 W).
	Eps units.Power
	// SkipEngine disables the cross-engine determinism checks, which
	// temporarily reconfigure the process-wide shared engine and are
	// therefore not safe under concurrent engine use.
	SkipEngine bool
	// Tables, when set, enables the decision-table invariants
	// (table-built, table-exact-gap, table-plan-gap, table-monotone)
	// against that set: each pair's tables are built synchronously and
	// swept on and off the grid against the exact compute path. nil
	// skips the table checks.
	Tables *decisiontable.Set
	// SkipTree disables the hierarchical budget-tree sweep (tree.go),
	// which profiles the heterogeneous fixture's four pairs through the
	// shared default engine.
	SkipTree bool
}

func (cfg *Config) normalize() {
	if len(cfg.Platforms) == 0 {
		cfg.Platforms = hw.AllPlatforms()
	}
	if len(cfg.Workloads) == 0 {
		cfg.Workloads = workload.AllWorkloads()
	}
	if cfg.BudgetPoints <= 0 {
		cfg.BudgetPoints = 16
	}
	if cfg.Eps <= 0 {
		cfg.Eps = 1e-9
	}
}

// collector accumulates check results into a report.
type collector struct {
	rep      *Report
	platform string
	workload string
}

// check records one assertion: ok means the invariant held; when it did
// not, the formatted detail becomes a violation.
func (c *collector) check(invariant string, budget units.Power, ok bool, format string, args ...any) {
	t := c.rep.PerInvariant[invariant]
	if t == nil {
		t = &Tally{}
		c.rep.PerInvariant[invariant] = t
	}
	t.Checks++
	c.rep.Checks++
	if ok {
		return
	}
	t.Violations++
	c.rep.Violations = append(c.rep.Violations, Violation{
		Invariant: invariant,
		Platform:  c.platform,
		Workload:  c.workload,
		Budget:    budget,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// boundSlack mirrors core's actuator-quantization slack when comparing
// allocated totals against budgets.
const boundSlack = units.Power(1e-6)

// gapTol returns the COORD-vs-exhaustive-best tolerance for a budget
// regime, keyed on where Table 1 places the optimum. The tolerances are
// calibrated to this simulator's measured envelope over the full seeded
// catalog, tightest where the heuristic is provably near-exact:
//
//   - Scenario I (surplus): COORD pins the exact measured demands, so
//     only the 2% profiling margin separates it from the optimum.
//   - Scenario II regime: the memory-first warranty costs the most at
//     the regime's lower edge — memory holds P_mem_L1 while the CPU
//     sits near its lowest P-state, where the optimum trades DRAM
//     headroom for CPU frequency. Measured worst case 23.3%
//     (haswell/dgemm just above P_cpu_L2 + P_mem_L1).
//   - Scenario III regime: the proportional split tracks the optimum
//     more closely; measured worst case 10.9%.
//
// A regression that degrades COORD beyond these envelopes — a regime
// misclassification, an inverted split — still trips the check.
func gapTol(loc category.OptimalLocation) float64 {
	switch loc.IntersectionLo {
	case category.ScenarioI:
		return 0.02 // surplus regime: COORD pins the exact demands
	case category.ScenarioII:
		return 0.25 // II∩III, memory-first warranty at the regime edge
	case category.ScenarioIII:
		return 0.12 // III∩IV, proportional-split region
	default:
		return 0.15 // deep throttle regimes
	}
}

// gpuGapTol is the COORD-vs-best tolerance on GPU platforms. The sweep
// enumerates discrete memory clocks while Algorithm 2 splits power
// continuously, so the gap concentrates at small board caps where one
// clock step is a large budget fraction (measured worst case 14.6%,
// titanv/sgemm at the 100 W cap floor). The H100-class platforms fit
// under the same tolerance only because their HBM clock floor keeps
// bandwidth adequate when Algorithm 2 pins memory at P_mem_min — see
// the GPUMemSpec.ClockMin comments in internal/hw.
const gpuGapTol = 0.16

// gpuPhasedGapTol relaxes coord-gap for multi-phase GPU workloads.
// Algorithm 2 picks one static split from the aggregate profile, while
// the grid optimum can favor whichever single setting suits the phase
// mix at that budget; a compute-bound prefill blended with a
// bandwidth-bound decode legitimately leaves a much larger static gap:
// the token-weighted aggregate reads compute-bound (llmbatch: 63 ops/B)
// so Algorithm 2 pins memory at its floor, while the decode phase —
// 3% of tokens but most of the wall time at 1.4 GB per token —
// wants the opposite split (measured worst case 51.9%, h200/llmbatch
// at 233.3 W). This is the static-coordination deficiency
// internal/recoord's online re-coordination exists to close; the
// invariant only guards against total collapse, it does not bless
// static COORD as near-optimal on phased mixes.
const gpuPhasedGapTol = 0.55

// coordMonotoneTol is the relative dip COORD's achieved performance may
// show when a growing budget crosses a regime boundary: entering the
// memory-adequate regime re-bases the split (memory jumps to P_mem_L1,
// the CPU falls back to near P_cpu_L2), which costs up to ~2% measured
// before the extra budget wins it back.
const coordMonotoneTol = 0.03

// Run executes the harness over the configured catalog.
func Run(cfg Config) (*Report, error) {
	cfg.normalize()
	rep := &Report{PerInvariant: make(map[string]*Tally)}
	for _, p := range cfg.Platforms {
		for _, w := range cfg.Workloads {
			if w.Kind != p.Kind {
				continue
			}
			rep.Pairs++
			c := &collector{rep: rep, platform: p.Name, workload: w.Name}
			var err error
			switch p.Kind {
			case hw.KindCPU:
				err = checkCPUPair(cfg, c, p, w)
			case hw.KindGPU:
				err = checkGPUPair(cfg, c, p, w)
			}
			if err != nil {
				return rep, fmt.Errorf("invariant: %s/%s: %w", p.Name, w.Name, err)
			}
			if err := checkClusterPair(cfg, c, p, w); err != nil {
				return rep, fmt.Errorf("invariant: %s/%s: cluster check: %w", p.Name, w.Name, err)
			}
			if !cfg.SkipEngine {
				if err := checkEngineIdentical(c, p, w); err != nil {
					return rep, fmt.Errorf("invariant: %s/%s: engine check: %w", p.Name, w.Name, err)
				}
			}
			if cfg.Tables != nil {
				checkTablePair(cfg, c, cfg.Tables, p, w)
			}
		}
	}
	if !cfg.SkipTree {
		if err := checkTree(cfg, rep); err != nil {
			return rep, fmt.Errorf("invariant: tree sweep: %w", err)
		}
	}
	return rep, nil
}
