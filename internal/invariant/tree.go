package invariant

import (
	"fmt"

	"repro/internal/powertree"
	"repro/internal/units"
)

// treeSpecString is the heterogeneous 2-rack fixture the tree
// invariants sweep: an uncapped CPU rack mixing IvyBridge and Haswell
// at two SLA priorities beside a 450 W-capped GPU rack mixing two card
// generations. The capped rack exercises rack-level shedding; the
// mixed priorities exercise SLA ordering.
const treeSpecString = "cpu=ivybridge/stream*2^2,haswell/dgemm^1;gpu@450=titanxp/sgemm^1,titanv/gpustream"

// checkTree sweeps the hierarchical budget-tree invariants over the
// full budget grid of the heterogeneous fixture:
//
//   - tree-conservation: at every interior node the children's grants
//     sum exactly to the node's share — leaves to their rack, racks
//     plus the root surplus to the datacenter budget — in integer
//     quanta, and no rack exceeds its cap.
//   - tree-monotone: total granted power is non-decreasing in the root
//     budget everywhere, and total modeled performance is
//     non-decreasing across the shed-free regime (across a shedding
//     transition the kept set changes discontinuously, so only power,
//     not performance, is globally monotone).
//   - tree-shed-minimal: no shed leaf could be re-admitted — its
//     productive floor exceeds the remaining datacenter headroom over
//     the kept floors or its rack's remaining cap headroom — and no
//     leaf shed for budget outranks a kept leaf.
//   - tree-metamorphic: permuting sibling order and splitting the
//     uncapped rack in two change no leaf's grant and no total
//     (ε = 0: tie-breaking is by node ID, never by spec position).
func checkTree(cfg Config, rep *Report) error {
	c := &collector{rep: rep, platform: "tree", workload: "hetero-2rack"}
	spec, err := powertree.ParseTreeSpec(treeSpecString)
	if err != nil {
		return fmt.Errorf("tree fixture: %w", err)
	}
	cs, err := powertree.BuildCurves(spec)
	if err != nil {
		return fmt.Errorf("tree curves: %w", err)
	}
	_, demand, err := cs.Demand(spec)
	if err != nil {
		return err
	}

	perm := permuteSpec(spec)
	split := splitSpec(spec)

	points := cfg.BudgetPoints * 2
	top := demand.Watts() * 1.2
	prevGranted := units.Power(-1)
	prevPerf := -1.0
	prevShedFree := false
	for i := 0; i < points; i++ {
		budget := units.Power(top * float64(i) / float64(points-1))
		res, err := powertree.SolveCurves(cs, spec, budget)
		if err != nil {
			return fmt.Errorf("tree solve at %v: %w", budget, err)
		}
		checkTreeConservation(c, spec, res)
		checkTreeShedMinimal(c, res)

		// tree-monotone: granted power everywhere; perf across the
		// shed-free regime.
		c.check("tree-monotone", budget, res.Granted >= prevGranted,
			"granted %v after %v at a larger budget", res.Granted, prevGranted)
		prevGranted = res.Granted
		shedFree := len(res.Shed) == 0
		if shedFree && prevShedFree {
			c.check("tree-monotone", budget, res.TotalPerf >= prevPerf,
				"shed-free perf %g after %g at a larger budget", res.TotalPerf, prevPerf)
		}
		if shedFree {
			prevPerf = res.TotalPerf
		}
		prevShedFree = shedFree

		// tree-metamorphic: sibling permutation and rack splitting.
		permRes, err := powertree.SolveCurves(cs, perm, budget)
		if err != nil {
			return fmt.Errorf("tree permuted solve at %v: %w", budget, err)
		}
		checkSameTree(c, "sibling permutation", budget, res, permRes)
		splitRes, err := powertree.SolveCurves(cs, split, budget)
		if err != nil {
			return fmt.Errorf("tree split solve at %v: %w", budget, err)
		}
		checkSameTree(c, "rack split", budget, res, splitRes)
	}
	return nil
}

// checkTreeConservation asserts the integer conservation identities.
func checkTreeConservation(c *collector, spec powertree.Spec, res *powertree.Result) {
	b := res.Budget
	c.check("tree-conservation", b, res.GrantedQuanta+res.SurplusQuanta == res.Quanta,
		"granted %d + surplus %d != root %d quanta", res.GrantedQuanta, res.SurplusQuanta, res.Quanta)
	c.check("tree-conservation", b, res.SurplusQuanta >= 0,
		"negative root surplus %d quanta", res.SurplusQuanta)
	perRack := map[string]int64{}
	for _, g := range res.Grants {
		perRack[g.Rack] += g.Quanta
	}
	rackSum := int64(0)
	for _, rr := range res.Racks {
		c.check("tree-conservation", b, perRack[rr.Rack] == rr.Quanta,
			"rack %s: leaf sum %d != rack share %d quanta", rr.Rack, perRack[rr.Rack], rr.Quanta)
		c.check("tree-conservation", b, rr.CapQuanta == 0 || rr.Quanta <= rr.CapQuanta,
			"rack %s: share %d quanta over cap %d", rr.Rack, rr.Quanta, rr.CapQuanta)
		rackSum += rr.Quanta
	}
	c.check("tree-conservation", b, rackSum == res.GrantedQuanta,
		"rack sum %d != granted %d quanta", rackSum, res.GrantedQuanta)
	c.check("tree-conservation", b, len(res.Grants)+len(res.Shed) == spec.Leaves(),
		"%d grants + %d shed != %d leaves", len(res.Grants), len(res.Shed), spec.Leaves())
}

// checkTreeShedMinimal asserts no shed leaf is re-admissible and SLA
// order was respected for budget sheds.
func checkTreeShedMinimal(c *collector, res *powertree.Result) {
	b := res.Budget
	keptFloorQ := int64(0)
	rackFloorQ := map[string]int64{}
	capQ := map[string]int64{}
	for _, rr := range res.Racks {
		keptFloorQ += rr.FloorQuanta
		rackFloorQ[rr.Rack] = rr.FloorQuanta
		if rr.Cap > 0 {
			capQ[rr.Rack] = rr.CapQuanta
		} else {
			capQ[rr.Rack] = -1
		}
	}
	for _, s := range res.Shed {
		overBudget := keptFloorQ+s.FloorQuanta > res.Quanta
		overRack := capQ[s.Rack] >= 0 && rackFloorQ[s.Rack]+s.FloorQuanta > capQ[s.Rack]
		c.check("tree-shed-minimal", b, overBudget || overRack,
			"shed leaf %s (floor %d quanta) is re-admissible: kept floors %d of %d, rack %s floors %d cap %d",
			s.Node, s.FloorQuanta, keptFloorQ, res.Quanta, s.Rack, rackFloorQ[s.Rack], capQ[s.Rack])
		if s.Reason == "budget" {
			// SLA blocking: the kept floors of leaves that outrank s in
			// admission order (priority desc, node ID asc) already
			// crowd out s's floor — s was not skipped for a junior.
			blockQ := int64(0)
			for _, g := range res.Grants {
				if g.Priority > s.Priority || (g.Priority == s.Priority && g.Node < s.Node) {
					blockQ += g.FloorQuanta
				}
			}
			c.check("tree-shed-minimal", b, blockQ+s.FloorQuanta > res.Quanta,
				"budget-shed leaf %s (prio %d, floor %d quanta) fits after its seniors' floors (%d of %d quanta)",
				s.Node, s.Priority, s.FloorQuanta, blockQ, res.Quanta)
		}
	}
}

// checkSameTree asserts two solves agree leaf by leaf, exactly.
func checkSameTree(c *collector, label string, b units.Power, x, y *powertree.Result) {
	gx := map[string]int64{}
	for _, g := range x.Grants {
		gx[g.Node] = g.Quanta
	}
	gy := map[string]int64{}
	for _, g := range y.Grants {
		gy[g.Node] = g.Quanta
	}
	same := len(gx) == len(gy) && len(x.Shed) == len(y.Shed)
	if same {
		for id, q := range gx {
			if gy[id] != q {
				same = false
				break
			}
		}
	}
	c.check("tree-metamorphic", b, same,
		"%s changed leaf grants: %v vs %v", label, gx, gy)
	c.check("tree-metamorphic", b, x.TotalPerf == y.TotalPerf,
		"%s changed total performance: %g vs %g", label, x.TotalPerf, y.TotalPerf)
	c.check("tree-metamorphic", b, x.GrantedQuanta == y.GrantedQuanta,
		"%s changed granted quanta: %d vs %d", label, x.GrantedQuanta, y.GrantedQuanta)
}

// permuteSpec reverses rack and sibling order, keeping IDs.
func permuteSpec(spec powertree.Spec) powertree.Spec {
	out := powertree.Spec{Racks: make([]powertree.Rack, len(spec.Racks))}
	for i := range spec.Racks {
		r := spec.Racks[len(spec.Racks)-1-i]
		nodes := make([]powertree.Node, len(r.Nodes))
		for j := range r.Nodes {
			nodes[j] = r.Nodes[len(r.Nodes)-1-j]
		}
		out.Racks[i] = powertree.Rack{ID: r.ID, Cap: r.Cap, Nodes: nodes}
	}
	return out
}

// splitSpec halves the first uncapped multi-node rack into two racks
// with the same leaves (uncapped rack boundaries are administrative).
func splitSpec(spec powertree.Spec) powertree.Spec {
	var out powertree.Spec
	done := false
	for _, r := range spec.Racks {
		if !done && r.Cap == 0 && len(r.Nodes) >= 2 {
			mid := len(r.Nodes) / 2
			out.Racks = append(out.Racks,
				powertree.Rack{ID: r.ID + "-a", Nodes: append([]powertree.Node(nil), r.Nodes[:mid]...)},
				powertree.Rack{ID: r.ID + "-b", Nodes: append([]powertree.Node(nil), r.Nodes[mid:]...)})
			done = true
			continue
		}
		out.Racks = append(out.Racks, r)
	}
	return out
}
