package invariant

import (
	"math"
	"reflect"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/units"
	"repro/internal/workload"
)

func checkGPUPair(cfg Config, c *collector, p hw.Platform, w workload.Workload) error {
	prof, err := profile.ProfileGPU(p, w)
	if err != nil {
		return err
	}
	gpu := p.GPU

	// Below or at the memory power floor nothing is left for the SMs:
	// Algorithm 2 must reject, never fabricate a negative SM budget.
	for _, b := range []units.Power{0, prof.MemMin / 2, prof.MemMin} {
		d := coord.GPU(prof, b, coord.DefaultGamma)
		c.check("reject-threshold", b, d.Status == coord.StatusTooSmall,
			"budget at or under the memory floor %v got status %v", prof.MemMin, d.Status)
	}

	type perfPoint struct {
		budget  units.Power
		perfMax float64
	}
	var curve []perfPoint

	for _, budget := range core.BudgetRange(gpu.MinCap, gpu.MaxCap, cfg.BudgetPoints) {
		d := coord.GPU(prof, budget, coord.DefaultGamma)
		c.check("reject-threshold", budget, d.Status != coord.StatusTooSmall,
			"settable budget rejected (memory floor %v)", prof.MemMin)
		if d.Status == coord.StatusTooSmall {
			continue
		}

		c.check("alloc-finite", budget, finite(d.Alloc), "allocated %v", d.Alloc)
		c.check("budget-bound", budget, d.Alloc.Total() <= budget+boundSlack,
			"allocated %v over budget", d.Alloc)
		c.check("mem-range", budget,
			d.Alloc.Mem >= prof.MemMin-boundSlack && d.Alloc.Mem <= prof.MemMax+boundSlack,
			"memory budget %v outside card range [%v, %v]", d.Alloc.Mem, prof.MemMin, prof.MemMax)
		c.check("surplus-iff", budget,
			(d.Status == coord.StatusSurplus) == (budget >= prof.TotMax),
			"status %v with P_tot_max %v", d.Status, prof.TotMax)
		if d.Status == coord.StatusSurplus {
			bal := d.Alloc.Total() + d.Surplus
			c.check("surplus-balance", budget,
				math.Abs((bal-budget).Watts()) <= 1e-6,
				"alloc %v + surplus %v = %v", d.Alloc, d.Surplus, bal)
		}

		// Metamorphic gamma checks: a non-finite gamma must behave
		// exactly like the default, and for compute-intensive
		// applications (memory pinned to its minimum) gamma must not
		// matter at all.
		nan := coord.GPU(prof, budget, math.NaN())
		c.check("alloc-finite", budget, reflect.DeepEqual(nan, d),
			"NaN gamma decision %+v differs from default %+v", nan, d)
		if prof.ComputeIntensive {
			lo, hi := coord.GPU(prof, budget, 0.25), coord.GPU(prof, budget, 0.75)
			c.check("alloc-finite", budget, reflect.DeepEqual(lo, hi),
				"gamma changed a compute-intensive decision: %+v vs %+v", lo, hi)
		}

		pb := core.NewProblem(p, w, budget)
		best, err := pb.PerfMax()
		if err != nil {
			return err
		}
		// A surplus decision pins the application's demand, which can sit
		// below the card's minimum settable cap (titanv/gpustream). The
		// governor would be programmed at its floor then; headroom above
		// the demand changes nothing, so raise the cap side only.
		evalAlloc := d.Alloc
		if t := evalAlloc.Total(); t < gpu.MinCap {
			evalAlloc.Proc += gpu.MinCap - t
		}
		achieved, err := pb.Evaluate(evalAlloc)
		if err != nil {
			return err
		}
		gapTol := gpuGapTol
		if len(w.Phases) > 1 {
			gapTol = gpuPhasedGapTol
		}
		c.check("coord-gap", budget,
			achieved.Result.Perf >= best.Result.Perf*(1-gapTol),
			"coord %.4g vs best %.4g (gap %.1f%%, tolerance %.0f%%)",
			achieved.Result.Perf, best.Result.Perf,
			100*(1-achieved.Result.Perf/best.Result.Perf), 100*gapTol)
		curve = append(curve, perfPoint{budget, best.Result.Perf})
	}

	for i := 1; i < len(curve); i++ {
		prev, cur := curve[i-1], curve[i]
		c.check("perfmax-monotone", cur.budget,
			cur.perfMax >= prev.perfMax*(1-1e-9),
			"perf_max fell from %.6g at %v to %.6g", prev.perfMax, prev.budget, cur.perfMax)
	}
	return nil
}
