package invariant

import (
	"math"
	"sort"

	"repro/internal/allocsvc"
	"repro/internal/decisiontable"
	"repro/internal/dyncoord"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/units"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Decision-table invariants (run when Config.Tables is set):
//
//   - table-built: every pair whose profile is healthy gets a coord
//     table (and CPU pairs a plan table) — a build regression must not
//     silently demote the whole catalog to the exact path.
//   - table-exact-gap: on a probe sweep that lands below the range, on
//     every segment boundary, between grid points, at saturation, and
//     beyond it, a table-served coord answer matches the exact path:
//     status, surplus, and headers exactly; allocation within
//     decisiontable.AllocEps; perf and power within the set's Eps.
//   - table-plan-gap: the same contract for table-served plans (step
//     statuses, fallback flags, weights exactly; allocations within
//     AllocEps).
//   - table-monotone: interpolation preserves COORD's monotonicity —
//     table-served performance never dips below its running maximum by
//     more than the exact path itself dips at the same budget (regime
//     transitions re-base the split, so the exact path legitimately
//     dips at boundaries), floored at the regime-transition tolerance
//     the exact path is held to, plus twice the interpolation
//     tolerance. A table whose interpolation *introduces* a dip the
//     exact path does not have trips the check.

// tableBoundaryCap bounds how many segment boundaries the sweep visits
// per pair; large tables (hundreds of subdivided segments) are sampled
// evenly instead of exhaustively.
const tableBoundaryCap = 64

// tableSweep builds the probe budgets for a table spanning [lo, hi]:
// below-range, every (sampled) boundary, off-grid interior points, and
// beyond saturation.
func tableSweep(bounds []float64, points int) []float64 {
	lo, hi := bounds[0], bounds[len(bounds)-1]
	var bs []float64
	bs = append(bs, lo/2, lo*0.999, lo, hi, hi+(hi-lo)/2, hi*2)
	stride := 1
	if len(bounds) > tableBoundaryCap {
		stride = len(bounds) / tableBoundaryCap
	}
	for i := 0; i < len(bounds); i += stride {
		bs = append(bs, bounds[i])
	}
	// Interior points offset by an irrational-ish fraction so they fall
	// between grid points, never on them.
	n := 4 * points
	for i := 0; i < n; i++ {
		bs = append(bs, lo+(hi-lo)*(float64(i)+0.382)/float64(n))
	}
	sort.Float64s(bs)
	return bs
}

// checkTablePair runs the table invariants for one catalog pair.
func checkTablePair(cfg Config, c *collector, s *decisiontable.Set, p hw.Platform, w workload.Workload) {
	healthy := false
	switch p.Kind {
	case hw.KindCPU:
		_, err := profile.ProfileCPU(p, w)
		healthy = err == nil
	case hw.KindGPU:
		_, err := profile.ProfileGPU(p, w)
		healthy = err == nil
	}
	coordBuilt, planBuilt := s.Build(p.Name, w.Name)
	c.check("table-built", 0, coordBuilt || !healthy,
		"pair profiles cleanly but its coord table failed to build")
	if p.Kind == hw.KindCPU {
		// Plan tables additionally require healthy per-phase profiles;
		// a pair degraded at phase granularity legitimately has none.
		_, phasesHealthy, _ := dyncoord.PlanTableInputs(p, w)
		c.check("table-built", 0, planBuilt || !phasesHealthy,
			"pair plans cleanly but its plan table failed to build")
	}

	if coordBuilt {
		checkCoordTable(cfg, c, s, p, w)
	}
	if planBuilt {
		checkPlanTable(cfg, c, s, p, w)
	}
}

func checkCoordTable(cfg Config, c *collector, s *decisiontable.Set, p hw.Platform, w workload.Workload) {
	bounds := s.CoordBoundaries(p.Name, w.Name)
	if len(bounds) < 2 {
		c.check("table-built", 0, false, "built coord table reports no boundaries")
		return
	}
	eps := s.Eps()
	var maxPerf, maxExact, maxBudget float64
	for _, b := range tableSweep(bounds, cfg.BudgetPoints) {
		req := wire.CoordRequest{Platform: p.Name, Workload: w.Name, Budget: b, Strategy: "coord"}
		var got wire.CoordResponse
		if !s.Coord(&req, &got) {
			continue // exact-only sliver or unbuildable point: the service falls back
		}
		exact, err := allocsvc.ComputeCoord(req)
		if err != nil {
			c.check("table-exact-gap", units.Power(b), false,
				"table served a budget the exact path rejects: %v", err)
			continue
		}
		okShape := got.Status == exact.Status &&
			got.Platform == exact.Platform && got.Workload == exact.Workload &&
			got.Kind == exact.Kind && got.Strategy == exact.Strategy &&
			got.Budget == exact.Budget && got.PerfUnit == exact.PerfUnit &&
			got.SurplusWatts == exact.SurplusWatts &&
			(got.Alloc == nil) == (exact.Alloc == nil)
		if okShape && exact.Alloc != nil {
			okShape = relWithin(got.Alloc.ProcWatts, exact.Alloc.ProcWatts, decisiontable.AllocEps) &&
				relWithin(got.Alloc.MemWatts, exact.Alloc.MemWatts, decisiontable.AllocEps) &&
				relWithin(got.ExpectedPerf, exact.ExpectedPerf, eps) &&
				relWithin(got.ExpectedPower, exact.ExpectedPower, eps)
		}
		c.check("table-exact-gap", units.Power(b), okShape,
			"table %+v diverges from exact %+v", got, exact)

		if exact.Alloc != nil {
			// Allow the dip the exact path shows at this budget relative
			// to its own running maximum (regime re-bases), floored at
			// the usual transition tolerance, plus interpolation slack.
			exactDip := 0.0
			if maxExact > 0 {
				exactDip = 1 - exact.ExpectedPerf/maxExact
			}
			tol := math.Max(coordMonotoneTol, exactDip) + 2*eps
			c.check("table-monotone", units.Power(b),
				got.ExpectedPerf >= maxPerf*(1-tol),
				"interpolated perf %.4f at %.2f W dips more than %.1f%% below %.4f at %.2f W",
				got.ExpectedPerf, b, tol*100, maxPerf, maxBudget)
			if got.ExpectedPerf > maxPerf {
				maxPerf, maxBudget = got.ExpectedPerf, b
			}
			if exact.ExpectedPerf > maxExact {
				maxExact = exact.ExpectedPerf
			}
		}
	}
}

func checkPlanTable(cfg Config, c *collector, s *decisiontable.Set, p hw.Platform, w workload.Workload) {
	bounds := s.PlanBoundaries(p.Name, w.Name)
	if len(bounds) < 2 {
		c.check("table-built", 0, false, "built plan table reports no boundaries")
		return
	}
	for _, b := range tableSweep(bounds, cfg.BudgetPoints) {
		req := wire.PlanRequest{Platform: p.Name, Workload: w.Name, Budget: b}
		var got wire.PlanResponse
		if !s.Plan(&req, &got) {
			continue
		}
		exact, err := allocsvc.ComputePlan(req)
		if err != nil {
			c.check("table-plan-gap", units.Power(b), false,
				"table served a budget the exact path rejects: %v", err)
			continue
		}
		ok := got.Rejected == exact.Rejected && len(got.Steps) == len(exact.Steps) &&
			got.Platform == exact.Platform && got.Workload == exact.Workload &&
			got.Budget == exact.Budget
		if ok {
			for i := range exact.Steps {
				e, g := &exact.Steps[i], &got.Steps[i]
				ok = ok && g.Phase == e.Phase && g.Weight == e.Weight &&
					g.Status == e.Status && g.FellBack == e.FellBack &&
					relWithin(g.Alloc.ProcWatts, e.Alloc.ProcWatts, decisiontable.AllocEps) &&
					relWithin(g.Alloc.MemWatts, e.Alloc.MemWatts, decisiontable.AllocEps)
			}
		}
		c.check("table-plan-gap", units.Power(b), ok,
			"table plan %+v diverges from exact %+v", got, exact)
	}
}

// relWithin is the table contract's comparison: relative to the larger
// magnitude with a 1-unit floor.
func relWithin(a, b, eps float64) bool {
	m := math.Max(math.Abs(a), math.Abs(b))
	if m < 1 {
		m = 1
	}
	return math.Abs(a-b) <= eps*m
}
