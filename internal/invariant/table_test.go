package invariant

import (
	"testing"

	"repro/internal/decisiontable"
	"repro/internal/hw"
	"repro/internal/workload"
)

// TestTableInvariants exercises the decision-table checks on a bounded
// slice of the catalog — one CPU pair (coord + plan tables) and one GPU
// pair (coord only, strict lower bound) — so tier-1 stays fast while
// both table kinds cross every regime: below-range, boundaries,
// off-grid interior points, saturation, and beyond.
func TestTableInvariants(t *testing.T) {
	cpu, err := hw.PlatformByName("ivybridge")
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := hw.PlatformByName("titanv")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.ByName("stream")
	if err != nil {
		t.Fatal(err)
	}
	hpcg, err := workload.ByName("hpcg")
	if err != nil {
		t.Fatal(err)
	}

	rep, err := Run(Config{
		Platforms:    []hw.Platform{cpu, gpu},
		Workloads:    []workload.Workload{stream, hpcg},
		BudgetPoints: 4,
		SkipEngine:   true,
		Tables:       decisiontable.New(decisiontable.Config{}),
	})
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	if rep.Pairs != 2 {
		t.Fatalf("pairs = %d, want 2", rep.Pairs)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	for _, want := range []string{
		"table-built", "table-exact-gap", "table-plan-gap", "table-monotone",
	} {
		tl := rep.PerInvariant[want]
		if tl == nil || tl.Checks == 0 {
			t.Errorf("invariant %q never checked", want)
		}
	}
	t.Logf("table checks: %d assertions", rep.Checks)
}
