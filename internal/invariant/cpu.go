package invariant

import (
	"math"

	"repro/internal/category"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/units"
	"repro/internal/workload"
)

// finite reports whether every member of the allocation is a finite,
// non-negative power.
func finite(a core.Allocation) bool {
	p, m := a.Proc.Watts(), a.Mem.Watts()
	return !math.IsNaN(p) && !math.IsInf(p, 0) && p >= 0 &&
		!math.IsNaN(m) && !math.IsInf(m, 0) && m >= 0
}

// cpuBudgetGrid brackets every Algorithm 1 regime for a profile: from
// below the productive threshold (regime D must reject) to past the
// maximum demand (regime A must report surplus).
func cpuBudgetGrid(cp category.CriticalPowers, n int) []units.Power {
	lo := cp.ProductiveThreshold() - 15
	hi := cp.CPUMax + cp.MemMax + 40
	budgets := core.BudgetRange(lo, hi, n)
	// Pin the three regime boundaries themselves: off-by-epsilon bugs
	// live exactly there, not on an even grid.
	budgets = append(budgets,
		cp.ProductiveThreshold(),
		cp.CPULowPState+cp.MemMax,
		cp.CPUMax+cp.MemMax,
	)
	return budgets
}

func checkCPUPair(cfg Config, c *collector, p hw.Platform, w workload.Workload) error {
	prof, err := profile.ProfileCPU(p, w)
	if err != nil {
		return err
	}
	cp := prof.Critical
	threshold := cp.ProductiveThreshold()
	sweepFloor := core.DefaultProcMin + core.DefaultMemMin

	type perfPoint struct {
		budget          units.Power
		perfMax, coordP float64
	}
	var curve []perfPoint

	for _, budget := range cpuBudgetGrid(cp, cfg.BudgetPoints) {
		d := coord.CPU(prof, budget)
		c.check("reject-threshold", budget,
			(d.Status == coord.StatusTooSmall) == (budget < threshold),
			"status %v with productive threshold %v", d.Status, threshold)

		// Every baseline strategy shares the budget-bound and finiteness
		// obligations (their rejection thresholds differ, so only COORD's
		// is pinned above).
		for _, s := range coord.CPUStrategies() {
			sd := s.Decide(prof, budget)
			if sd.Status == coord.StatusTooSmall {
				continue
			}
			c.check("alloc-finite", budget, finite(sd.Alloc),
				"%s allocated %v", s.Name, sd.Alloc)
			c.check("budget-bound", budget, sd.Alloc.Total() <= budget+boundSlack,
				"%s allocated %v over budget", s.Name, sd.Alloc)
		}
		if d.Status == coord.StatusTooSmall {
			continue
		}

		c.check("surplus-iff", budget,
			(d.Status == coord.StatusSurplus) == (budget >= cp.CPUMax+cp.MemMax),
			"status %v with max demand %v", d.Status, cp.CPUMax+cp.MemMax)
		if d.Status == coord.StatusSurplus {
			bal := d.Alloc.Total() + d.Surplus
			c.check("surplus-balance", budget,
				math.Abs((bal-budget).Watts()) <= 1e-6,
				"alloc %v + surplus %v = %v", d.Alloc, d.Surplus, bal)
		}

		// Exhaustive comparison needs a feasible sweep.
		if budget < sweepFloor {
			continue
		}
		pb := core.NewProblem(p, w, budget)
		best, err := pb.PerfMax()
		if err != nil {
			return err
		}
		achieved, err := pb.Evaluate(d.Alloc)
		if err != nil {
			return err
		}
		tol := gapTol(cp.Locate(budget))
		c.check("coord-gap", budget,
			achieved.Result.Perf >= best.Result.Perf*(1-tol),
			"coord %.4g vs best %.4g (gap %.1f%%, tolerance %.0f%%)",
			achieved.Result.Perf, best.Result.Perf,
			100*(1-achieved.Result.Perf/best.Result.Perf), 100*tol)
		curve = append(curve, perfPoint{budget, best.Result.Perf, achieved.Result.Perf})
	}

	// Monotonicity along the (sorted-by-construction) feasible curve:
	// more budget can never hurt the optimum, and COORD must not convert
	// extra budget into a slowdown either.
	for i := 1; i < len(curve); i++ {
		prev, cur := curve[i-1], curve[i]
		if cur.budget <= prev.budget {
			continue // appended boundary budgets fall out of order
		}
		c.check("perfmax-monotone", cur.budget,
			cur.perfMax >= prev.perfMax*(1-1e-9),
			"perf_max fell from %.6g at %v to %.6g", prev.perfMax, prev.budget, cur.perfMax)
		c.check("coord-monotone", cur.budget,
			cur.coordP >= prev.coordP*(1-coordMonotoneTol),
			"coord perf fell from %.6g at %v to %.6g", prev.coordP, prev.budget, cur.coordP)
	}

	checkClassifierStability(cfg, c, cp)
	checkClassifierScale(c, cp)
	return nil
}

// checkClassifierStability probes Classify and Locate within ±ε of every
// critical power. The scenario definitions use half-open boundaries (the
// boundary value belongs to the upper side), so each side of a boundary
// must be internally constant: flapping at ±ε means a comparison is
// phrased with the wrong strictness somewhere.
func checkClassifierStability(cfg Config, c *collector, cp category.CriticalPowers) {
	eps := cfg.Eps
	adequateMem := cp.MemMax + 10
	adequateProc := cp.CPUMax + 10

	stable := func(axis string, at units.Power, classify func(units.Power) category.Scenario) {
		lowA, lowB := classify(at-2*eps), classify(at-eps)
		c.check("classify-stable", at, lowA == lowB,
			"%s below boundary flaps: %v at -2ε vs %v at -ε", axis, lowA, lowB)
		hiA, hiB, hiC := classify(at), classify(at+eps), classify(at+2*eps)
		c.check("classify-stable", at, hiA == hiB && hiB == hiC,
			"%s at/above boundary flaps: %v / %v / %v", axis, hiA, hiB, hiC)
	}

	for _, b := range []units.Power{cp.CPUFloor, cp.CPULowThrottle, cp.CPULowPState, cp.CPUMax} {
		stable("proc", b, func(v units.Power) category.Scenario {
			return cp.Classify(v, adequateMem)
		})
	}
	for _, b := range []units.Power{cp.MemFloor, cp.MemAtCPULow, cp.MemMax} {
		stable("mem", b, func(v units.Power) category.Scenario {
			return cp.Classify(adequateProc, v)
		})
	}

	// Table 1's budget regimes share the same half-open convention.
	for _, b := range []units.Power{
		cp.CPUMax + cp.MemMax,
		cp.CPULowPState + cp.MemMax,
		cp.ProductiveThreshold(),
		cp.CPUFloor + cp.MemFloor,
	} {
		lowA, lowB := cp.Locate(b-2*eps), cp.Locate(b-eps)
		c.check("classify-stable", b, lowA.IntersectionLo == lowB.IntersectionLo,
			"Locate below regime boundary flaps: %v vs %v", lowA.IntersectionLo, lowB.IntersectionLo)
		hiA, hiB := cp.Locate(b), cp.Locate(b+eps)
		c.check("classify-stable", b, hiA.IntersectionLo == hiB.IntersectionLo,
			"Locate at/above regime boundary flaps: %v vs %v", hiA.IntersectionLo, hiB.IntersectionLo)
	}
}

// checkClassifierScale is the metamorphic check: scaling every critical
// power and both caps by the same factor must not change the scenario —
// categorization depends on where the caps sit relative to the demands,
// not on absolute watts.
func checkClassifierScale(c *collector, cp category.CriticalPowers) {
	scaled := func(s float64) category.CriticalPowers {
		k := units.Power(s)
		return category.CriticalPowers{
			CPUMax: cp.CPUMax * k, CPULowPState: cp.CPULowPState * k,
			CPULowThrottle: cp.CPULowThrottle * k, CPUFloor: cp.CPUFloor * k,
			MemMax: cp.MemMax * k, MemAtCPULow: cp.MemAtCPULow * k,
			MemFloor: cp.MemFloor * k,
		}
	}
	// Sample points covering every scenario region, expressed relative
	// to the profile so they land in the same region at any scale.
	points := []core.Allocation{
		{Proc: cp.CPUMax + 5, Mem: cp.MemMax + 5},                     // I
		{Proc: (cp.CPULowPState + cp.CPUMax) / 2, Mem: cp.MemMax + 5}, // II
		{Proc: cp.CPUMax + 5, Mem: (cp.MemFloor + cp.MemMax) / 2},     // III
		{Proc: (cp.CPUFloor + cp.CPULowPState) / 2, Mem: cp.MemMax},   // IV
		{Proc: cp.CPUMax, Mem: cp.MemFloor / 2},                       // V
		{Proc: cp.CPUFloor / 2, Mem: cp.MemMax},                       // VI
		{Proc: (cp.CPULowPState + cp.CPUMax) / 2, Mem: cp.MemMax - 1}, // interior tie-break
		{Proc: cp.CPULowPState + 1, Mem: (cp.MemFloor + cp.MemMax) / 2},
	}
	for _, s := range []float64{0.5, 3} {
		sp := scaled(s)
		for _, pt := range points {
			want := cp.Classify(pt.Proc, pt.Mem)
			got := sp.Classify(pt.Proc*units.Power(s), pt.Mem*units.Power(s))
			c.check("classify-scale", pt.Total(), got == want,
				"scenario changed under ×%g scaling: %v -> %v at %v", s, want, got, pt)
		}
	}
}
