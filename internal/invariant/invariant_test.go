package invariant

import (
	"strings"
	"testing"

	"repro/internal/coord"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/units"
	"repro/internal/workload"
)

// TestInvariantSweepCatalog is the acceptance gate: the full
// (platform × workload × budget-grid) sweep must report zero
// violations across every invariant.
func TestInvariantSweepCatalog(t *testing.T) {
	rep, err := Run(Config{})
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	if rep.Pairs == 0 {
		t.Fatal("harness checked no pairs")
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	// Every invariant the package documents must actually have run.
	for _, want := range []string{
		"alloc-finite", "budget-bound", "classify-scale", "classify-stable",
		"coord-gap", "coord-monotone", "engine-identical", "expected-power-sum",
		"mem-range", "perfmax-monotone", "pool-conservation", "pool-nonneg",
		"reject-threshold", "schedule-complete", "surplus-balance", "surplus-iff",
	} {
		tl := rep.PerInvariant[want]
		if tl == nil || tl.Checks == 0 {
			t.Errorf("invariant %q never checked", want)
		}
	}
	t.Logf("checked %d pairs, %d assertions across %d invariants",
		rep.Pairs, rep.Checks, len(rep.PerInvariant))
}

// TestInvariantConfigFilters pins the sweep restriction knobs: a
// single-pair config checks exactly that pair and skips kind
// mismatches.
func TestInvariantConfigFilters(t *testing.T) {
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		t.Fatal(err)
	}
	gpuW, err := workload.ByName("gpustream")
	if err != nil {
		t.Fatal(err)
	}
	cpuW, err := workload.ByName("stream")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{
		Platforms:    []hw.Platform{p},
		Workloads:    []workload.Workload{cpuW, gpuW},
		BudgetPoints: 4,
		SkipEngine:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pairs != 1 {
		t.Errorf("pairs = %d, want 1 (GPU workload must not pair with a CPU platform)", rep.Pairs)
	}
	if !rep.Ok() {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
	}
}

// TestMetamorphicScaleInvariance is the issue's named metamorphic case:
// scaling a workload's demands (its critical powers) together with the
// caps must not change its category, for any scale.
func TestMetamorphicScaleInvariance(t *testing.T) {
	p, _ := hw.PlatformByName("ivybridge")
	for _, wl := range []string{"stream", "dgemm", "sra", "bt"} {
		w, err := workload.ByName(wl)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := profile.ProfileCPU(p, w)
		if err != nil {
			t.Fatal(err)
		}
		rep := &Report{PerInvariant: make(map[string]*Tally)}
		c := &collector{rep: rep, platform: p.Name, workload: wl}
		checkClassifierScale(c, prof.Critical)
		for _, v := range rep.Violations {
			t.Errorf("%s: %s", wl, v)
		}
	}
}

// TestMetamorphicShrinkingBudget is the issue's second named
// metamorphic case: shrinking the budget must never increase the
// performance COORD achieves (checked against the simulator, not just
// the allocation arithmetic).
func TestMetamorphicShrinkingBudget(t *testing.T) {
	p, _ := hw.PlatformByName("haswell")
	w, err := workload.ByName("stream")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{
		Platforms:    []hw.Platform{p},
		Workloads:    []workload.Workload{w},
		BudgetPoints: 24,
		SkipEngine:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tl := rep.PerInvariant["coord-monotone"]
	if tl == nil || tl.Checks == 0 {
		t.Fatal("coord-monotone never checked")
	}
	for _, v := range rep.Violations {
		if v.Invariant == "coord-monotone" || v.Invariant == "perfmax-monotone" {
			t.Errorf("violation: %s", v)
		}
	}
}

// TestViolationString pins the rendering used by pbc verify.
func TestViolationString(t *testing.T) {
	v := Violation{
		Invariant: "budget-bound", Platform: "ivybridge", Workload: "stream",
		Budget: 160, Detail: "allocated too much",
	}
	got := v.String()
	for _, part := range []string{"budget-bound", "ivybridge/stream", "160.0 W", "allocated too much"} {
		if !strings.Contains(got, part) {
			t.Errorf("String() = %q missing %q", got, part)
		}
	}
	if s := (Violation{Invariant: "classify-scale", Platform: "p", Workload: "w"}).String(); strings.Contains(s, "@") {
		t.Errorf("budget-free violation rendered a budget: %q", s)
	}
}

// TestGammaNonFiniteMatchesDefault pins the GPU metamorphic property at
// the harness level for every GPU pair: non-finite gamma falls back to
// the paper's default rather than poisoning the split.
func TestGammaNonFiniteMatchesDefault(t *testing.T) {
	for _, pl := range hw.Platforms() {
		if pl.Kind != hw.KindGPU {
			continue
		}
		for _, w := range workload.GPUWorkloads() {
			prof, err := profile.ProfileGPU(pl, w)
			if err != nil {
				t.Fatal(err)
			}
			for _, budget := range []units.Power{pl.GPU.MinCap, (pl.GPU.MinCap + pl.GPU.MaxCap) / 2, pl.GPU.MaxCap} {
				want := coord.GPU(prof, budget, coord.DefaultGamma)
				for _, gamma := range []float64{0, -1, 1.5} {
					if got := coord.GPU(prof, budget, gamma); got != want {
						t.Errorf("%s/%s gamma=%v: %+v, want default %+v", pl.Name, w.Name, gamma, got, want)
					}
				}
			}
		}
	}
}
