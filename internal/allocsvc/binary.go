package allocsvc

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/wire"
)

// BinaryContentType is the negotiated media type for the binary
// protocol, re-exported so callers need not import internal/wire
// (cmd/pbc already imports the telemetry wire package under that
// name).
const BinaryContentType = wire.ContentType

// isBinary reports whether the request negotiated the binary protocol.
func isBinary(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = strings.TrimSpace(ct[:i])
	}
	return ct == wire.ContentType
}

// Scratch pools for the zero-alloc fast path. Request and response
// structs are pooled together so a table hit allocates nothing once
// the pool is warm: the decoder interns catalog strings, the table
// fills the pooled response in place, and the encoder appends into the
// caller's pooled buffer.
type coordScratch struct {
	req   CoordRequest
	resp  CoordResponse
	alloc AllocJSON
}

var coordScratchPool = sync.Pool{New: func() any { return &coordScratch{} }}

func getCoordScratch() *coordScratch {
	sc := coordScratchPool.Get().(*coordScratch)
	sc.req = CoordRequest{}
	sc.alloc = AllocJSON{}
	sc.resp = CoordResponse{Alloc: &sc.alloc}
	return sc
}

type planScratch struct {
	req  PlanRequest
	resp PlanResponse
}

var planScratchPool = sync.Pool{New: func() any { return &planScratch{} }}

func getPlanScratch() *planScratch {
	sc := planScratchPool.Get().(*planScratch)
	steps := sc.resp.Steps
	sc.req = PlanRequest{}
	sc.resp = PlanResponse{Steps: steps[:0]}
	return sc
}

type scheduleScratch struct {
	req ScheduleRequest
}

var scheduleScratchPool = sync.Pool{New: func() any { return &scheduleScratch{} }}

func getScheduleScratch() *scheduleScratch {
	sc := scheduleScratchPool.Get().(*scheduleScratch)
	nodes, jobs := sc.req.Nodes, sc.req.Jobs
	sc.req = ScheduleRequest{Nodes: nodes[:0], Jobs: jobs[:0]}
	return sc
}

// ServeBinary handles one binary request frame without the HTTP layer:
// it dispatches on the frame's shape tag, serves the request, and
// appends the response frame to dst. It returns the HTTP-equivalent
// status code, the Retry-After hint in seconds (0 when absent), and
// the extended dst. A table-covered coord or plan request completes
// with zero heap allocations once the scratch pools are warm — this is
// the function the allocs/op gate benchmarks.
func (s *Service) ServeBinary(ctx context.Context, frame, dst []byte) (code, retryAfter int, out []byte) {
	tag, err := wire.Tag(frame)
	if err != nil {
		return http.StatusBadRequest, 0, wire.AppendError(dst, http.StatusBadRequest, err.Error())
	}
	switch tag {
	case wire.TCoordRequest:
		return s.serveBinaryCoord(ctx, frame, dst)
	case wire.TPlanRequest:
		return s.serveBinaryPlan(ctx, frame, dst)
	case wire.TScheduleRequest:
		return s.serveBinarySchedule(ctx, frame, dst)
	case wire.TTreeRequest:
		return s.serveBinaryTree(ctx, frame, dst)
	default:
		return http.StatusBadRequest, 0,
			wire.AppendError(dst, http.StatusBadRequest, "frame is not a request shape")
	}
}

func (s *Service) serveBinaryCoord(ctx context.Context, frame, dst []byte) (int, int, []byte) {
	sc := getCoordScratch()
	defer coordScratchPool.Put(sc)
	if err := wire.DecodeCoordRequest(frame, &sc.req); err != nil {
		return http.StatusBadRequest, 0, wire.AppendError(dst, http.StatusBadRequest, err.Error())
	}
	if sc.req.Strategy == "" {
		sc.req.Strategy = "coord"
	}
	if !s.closed.Load() && s.tableCoord(&sc.req, &sc.resp) {
		out, err := wire.AppendCoordResponse(dst, &sc.resp)
		if err != nil {
			return tooLargeFrameResponse(out)
		}
		return http.StatusOK, 0, out
	}
	req := sc.req // the closure outlives the scratch
	key := strings.Join([]string{
		RouteCoord, req.Platform, req.Workload, req.Strategy, budgetBits(req.Budget), "bin",
	}, "|")
	resp := s.do(ctx, RouteCoord, key, s.timeout(req.TimeoutMS), true, func() (any, error) {
		return ComputeCoord(req)
	})
	return resp.code, resp.retryAfter, append(dst, resp.body...)
}

func (s *Service) serveBinaryPlan(ctx context.Context, frame, dst []byte) (int, int, []byte) {
	sc := getPlanScratch()
	defer planScratchPool.Put(sc)
	if err := wire.DecodePlanRequest(frame, &sc.req); err != nil {
		return http.StatusBadRequest, 0, wire.AppendError(dst, http.StatusBadRequest, err.Error())
	}
	if !s.closed.Load() && s.tablePlan(&sc.req, &sc.resp) {
		out, err := wire.AppendPlanResponse(dst, &sc.resp)
		if err != nil {
			return tooLargeFrameResponse(out)
		}
		return http.StatusOK, 0, out
	}
	req := sc.req
	key := strings.Join([]string{
		RoutePlan, req.Platform, req.Workload, budgetBits(req.Budget), "bin",
	}, "|")
	resp := s.do(ctx, RoutePlan, key, s.timeout(req.TimeoutMS), true, func() (any, error) {
		return ComputePlan(req)
	})
	return resp.code, resp.retryAfter, append(dst, resp.body...)
}

func (s *Service) serveBinarySchedule(ctx context.Context, frame, dst []byte) (int, int, []byte) {
	sc := getScheduleScratch()
	defer scheduleScratchPool.Put(sc)
	if err := wire.DecodeScheduleRequest(frame, &sc.req); err != nil {
		return http.StatusBadRequest, 0, wire.AppendError(dst, http.StatusBadRequest, err.Error())
	}
	// Deep-copy: the compute closure may outlive the pooled scratch.
	req := sc.req
	req.Nodes = append([]NodeJSON(nil), sc.req.Nodes...)
	req.Jobs = append([]JobJSON(nil), sc.req.Jobs...)
	key := scheduleKey(&req) + "|bin"
	resp := s.do(ctx, RouteSchedule, key, s.timeout(req.TimeoutMS), true, func() (any, error) {
		return s.computeSchedule(req)
	})
	return resp.code, resp.retryAfter, append(dst, resp.body...)
}

// serveBinaryHTTP is the HTTP shim over ServeBinary-style handlers:
// it enforces negotiation rules, reads the body through pooled
// buffers, and writes the response frame with the binary content type.
func (s *Service) serveBinaryHTTP(w http.ResponseWriter, r *http.Request, route string, start time.Time,
	fn func(ctx context.Context, frame, dst []byte) (int, int, []byte)) {
	if !s.cfg.Binary {
		s.reject(w, route, &response{
			code:   http.StatusUnsupportedMediaType,
			body:   renderJSON(errorJSON{Error: "binary protocol not enabled on this server"}),
			binary: false,
		}, start)
		return
	}
	if r.Method != http.MethodPost {
		s.reject(w, route, &response{
			code:   http.StatusMethodNotAllowed,
			body:   wire.AppendError(nil, http.StatusMethodNotAllowed, "method "+r.Method+" not allowed; use POST"),
			binary: true,
		}, start)
		return
	}
	buf := wire.GetBuf()
	body, err := readBinaryBody(r.Body, (*buf)[:0])
	*buf = body
	if err != nil {
		wire.PutBuf(buf)
		code := errorCode(err)
		if code == http.StatusInternalServerError {
			code = http.StatusBadRequest // unreadable body is the client's fault
		}
		s.reject(w, route, &response{
			code:   code,
			body:   wire.AppendError(nil, code, err.Error()),
			binary: true,
		}, start)
		return
	}
	out := wire.GetBuf()
	code, retryAfter, rendered := fn(r.Context(), body, (*out)[:0])
	*out = rendered

	w.Header().Set("Content-Type", wire.ContentType)
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	w.WriteHeader(code)
	w.Write(rendered)
	wire.PutBuf(buf)
	wire.PutBuf(out)
	s.count(route, code, s.since(start))
}

// readBinaryBody reads the whole body into buf (growing it as needed)
// with the same size cap as the JSON surface.
func readBinaryBody(body io.Reader, buf []byte) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if len(buf) > maxBody {
			return buf, tooLargef("binary request body exceeds %d bytes; retry as JSON", maxBody)
		}
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, fmt.Errorf("reading request body: %v", err)
		}
	}
}

// --- binary renderers (the wire counterparts of http.go's JSON ones) ---

func okResponseBin(v any) *response {
	var body []byte
	var err error
	switch m := v.(type) {
	case CoordResponse:
		body, err = wire.AppendCoordResponse(nil, &m)
	case PlanResponse:
		body, err = wire.AppendPlanResponse(nil, &m)
	case ScheduleResponse:
		body, err = wire.AppendScheduleResponse(nil, &m)
	case TreeResponse:
		body, err = wire.AppendTreeResponse(nil, &m)
	default:
		return errorResponseBin(fmt.Errorf("internal: unrenderable response type %T", v))
	}
	if err != nil {
		// The computation succeeded but the result does not fit a binary
		// frame (a huge schedule round). 413 tells the client to retry
		// the same request in JSON, which has no frame cap.
		return errorResponseBin(err)
	}
	return &response{code: http.StatusOK, body: body, binary: true}
}

func errorResponseBin(err error) *response {
	code := errorCode(err)
	return &response{code: code, body: wire.AppendError(nil, code, err.Error()), binary: true}
}

// tooLargeFrameResponse is the fast-path analogue of okResponseBin's
// oversize branch: the table hit encoded past MaxFrame, so rewind to
// the (already-rewound) dst and answer 413 as an error frame.
func tooLargeFrameResponse(dst []byte) (int, int, []byte) {
	code := http.StatusRequestEntityTooLarge
	return code, 0, wire.AppendError(dst, code, "binary response exceeds frame cap; retry as JSON")
}

func timeoutResponseBin(err error) *response {
	msg := "deadline exceeded"
	if err != nil {
		msg = "deadline exceeded: " + err.Error()
	}
	return &response{
		code:   http.StatusGatewayTimeout,
		body:   wire.AppendError(nil, http.StatusGatewayTimeout, msg),
		binary: true,
	}
}

func busyResponseBin(retryAfterSecs int) *response {
	return &response{
		code:       http.StatusTooManyRequests,
		body:       wire.AppendError(nil, http.StatusTooManyRequests, "service saturated; retry later"),
		retryAfter: retryAfterSecs,
		binary:     true,
	}
}

func closingResponseBin() *response {
	return &response{
		code:   http.StatusServiceUnavailable,
		body:   wire.AppendError(nil, http.StatusServiceUnavailable, "service closing; not admitting new requests"),
		binary: true,
	}
}
