// Package allocsvc is the online allocation service: it serves the
// repository's three coordination decisions — the single-node COORD
// split, the dyncoord phase plan, and a cluster scheduling round — over
// HTTP, concurrently, with the degradation behaviour a production
// power-capped fleet needs. The paper's COORD heuristic exists to make
// allocation cheap enough to run online; FastCap and EcoShift both
// frame power capping as a continuously re-solved allocation problem,
// so the decision path must be a low-latency service rather than a
// batch job.
//
// The service wraps three load-shedding layers around the pure
// decision functions:
//
//   - a bounded worker pool: at most Workers requests compute at once
//     (the heavy lifting inside — profiling and simulation — already
//     fans out through the shared evalpool engine and its memo cache);
//   - request coalescing: identical in-flight requests, keyed on a
//     content fingerprint of (route, platform, workload, budget, ...)
//     — the same content-key discipline as the evalpool memo cache —
//     share one computation and one rendered response body, so a
//     thundering herd of identical queries costs one evaluation;
//   - backpressure: when the queue of admitted-but-not-yet-running
//     requests exceeds QueueDepth, new work is refused immediately with
//     429 and a Retry-After hint instead of being buffered without
//     bound, and every request carries a deadline (its own timeout_ms,
//     capped by MaxTimeout) after which the caller gets 504 even if
//     the shared computation later completes.
//
// Repeated /v1/schedule rounds against the same cluster reuse a cached
// cluster.Scheduler, whose (now race-safe, singleflighted) profile
// cache makes successive rounds cheap.
package allocsvc

import (
	"context"
	"math"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/flight"
	"repro/internal/telemetry"
)

// Config parameterizes a Service. The zero value gets sensible
// defaults from New.
type Config struct {
	// Workers bounds concurrently computing requests; 0 or negative
	// means GOMAXPROCS.
	Workers int
	// QueueDepth bounds requests admitted beyond the ones actively
	// computing. When exceeded, new requests are refused with 429.
	// 0 means DefaultQueueDepth; negative disables queueing entirely
	// (every request beyond Workers is refused).
	QueueDepth int
	// DefaultTimeout is the per-request deadline when the request does
	// not carry its own timeout_ms. 0 means DefaultTimeout.
	DefaultTimeout time.Duration
	// MaxTimeout caps per-request deadlines and bounds the shared
	// computation itself. 0 means DefaultMaxTimeout.
	MaxTimeout time.Duration
	// RetryAfter scales the Retry-After hint attached to 429 responses:
	// it is the estimated time for the worker pool to drain one full
	// round of queued work. The actual hint is adaptive — see
	// adaptiveRetryAfter. 0 means DefaultRetryAfter.
	RetryAfter time.Duration
	// SchedulerCacheSize bounds the cached cluster.Scheduler instances
	// for /v1/schedule (0 means DefaultSchedulerCacheSize; negative
	// disables the cache).
	SchedulerCacheSize int
	// Registry receives the service's metrics (request counters by
	// route and status, latency histograms, in-flight gauge, coalesce
	// hits). nil leaves the service uninstrumented; the handles are
	// nil-safe no-ops.
	Registry *telemetry.Registry
	// Tables, when non-nil, serves coord and plan requests from
	// precomputed decision tables: covered requests are answered by an
	// O(1) interpolating lookup that bypasses the worker pool and the
	// coalescing layer entirely (the lookup is cheaper than queueing).
	// Requests the tables do not cover — unknown pairs, non-default
	// strategies, degraded pairs, budgets outside the tabulated range —
	// fall through to the exact path unchanged.
	Tables Tables
	// Binary enables the content-negotiated binary protocol on the
	// /v1/* routes: requests with Content-Type application/x-pbc-binary
	// are decoded as wire frames and answered in kind. When false such
	// requests are refused with 415 so operators can keep a JSON-only
	// surface.
	Binary bool
	// Now is the clock the service reads request start/finish times
	// from (latency histograms, Retry-After accounting). nil means
	// time.Now; tests inject a fake clock so the latency histogram is a
	// deterministic function of the scripted clock, the same discipline
	// the chaos suite uses for breaker clocks.
	Now func() time.Time
	// Stall artificially lengthens every computation by the given
	// duration while it holds a worker slot. The real decision
	// functions are analytic and complete in microseconds, so on small
	// hosts concurrent requests rarely overlap and the backpressure
	// path never engages; load harnesses (cmd/benchserve's knee phase)
	// set Stall to impose a deterministic service time and locate the
	// 429 knee reproducibly. Production configs leave it zero.
	Stall time.Duration
}

// Defaults for the Config knobs.
const (
	DefaultQueueDepth         = 64
	DefaultTimeout            = 5 * time.Second
	DefaultMaxTimeout         = 30 * time.Second
	DefaultRetryAfter         = 1 * time.Second
	DefaultSchedulerCacheSize = 32
)

// Service is the allocation service. Construct with New; the zero
// value is not usable. Safe for concurrent use.
type Service struct {
	cfg Config

	slots    chan struct{} // worker pool: one token per computing request
	inflight atomic.Int64  // leaders admitted (queued or computing)
	closed   atomic.Bool   // set by Close: stop admitting, drain

	flight flight.Group[string, *response]

	schedMu    sync.Mutex
	scheds     map[string]*cluster.Scheduler
	schedOrder []string

	m metrics

	stats serviceStats

	// slow, when non-nil, runs inside the worker slot before the
	// computation. Tests use it to hold slots occupied so deadline and
	// backpressure paths become deterministic.
	slow func()
}

// serviceStats are the process-local counters Stats snapshots; they
// exist independently of telemetry so harnesses (cmd/benchserve) can
// read them without a registry.
type serviceStats struct {
	requests    atomic.Uint64
	ok          atomic.Uint64
	badInput    atomic.Uint64
	rejected    atomic.Uint64
	timeouts    atomic.Uint64
	failures    atomic.Uint64
	coalesced   atomic.Uint64
	tableHits   atomic.Uint64
	tableMisses atomic.Uint64
}

// New returns a service with cfg's knobs, defaults applied.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.QueueDepth == 0:
		cfg.QueueDepth = DefaultQueueDepth
	case cfg.QueueDepth < 0:
		cfg.QueueDepth = 0
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = DefaultTimeout
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = DefaultMaxTimeout
	}
	if cfg.DefaultTimeout > cfg.MaxTimeout {
		cfg.DefaultTimeout = cfg.MaxTimeout
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	switch {
	case cfg.SchedulerCacheSize == 0:
		cfg.SchedulerCacheSize = DefaultSchedulerCacheSize
	case cfg.SchedulerCacheSize < 0:
		cfg.SchedulerCacheSize = 0
	}
	s := &Service{
		cfg:    cfg,
		slots:  make(chan struct{}, cfg.Workers),
		scheds: map[string]*cluster.Scheduler{},
	}
	if cfg.Stall > 0 {
		s.slow = func() { time.Sleep(cfg.Stall) }
	}
	s.m.init(cfg.Registry)
	return s
}

// Workers returns the configured worker bound.
func (s *Service) Workers() int { return s.cfg.Workers }

// response is a fully rendered HTTP outcome, shared byte-for-byte by
// every coalesced caller.
type response struct {
	code int
	body []byte
	// retryAfter, when positive, attaches a Retry-After header of that
	// many seconds (429 responses carry the adaptive hint).
	retryAfter int
	// binary marks the body as a wire frame (Content-Type
	// application/x-pbc-binary) instead of JSON.
	binary bool
}

// do runs one request through coalescing, backpressure, the worker
// pool, and the caller's deadline. compute must be a pure function of
// the key. The returned response is shared across coalesced callers,
// so callers must not mutate it.
func (s *Service) do(ctx context.Context, route, key string, timeout time.Duration, bin bool, compute func() (any, error)) *response {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	ch, leader := s.flight.DoChan(key, func() (*response, error) {
		return s.run(bin, compute), nil
	})
	if !leader {
		s.stats.coalesced.Add(1)
		s.m.coalesceHits(route).Inc()
	}
	select {
	case r := <-ch:
		return r.Val
	case <-ctx.Done():
		// The shared computation keeps running for any other waiters;
		// this caller alone gives up.
		if bin {
			return timeoutResponseBin(ctx.Err())
		}
		return timeoutResponse(ctx.Err())
	}
}

// run executes compute inside the admission and worker-pool bounds.
// It always returns a response: errors are encoded, never escape.
func (s *Service) run(bin bool, compute func() (any, error)) *response {
	// Backpressure: refuse immediately when the service is saturated.
	// The increment happens before the closed check so Close, once it
	// observes zero inflight, cannot race with a leader that is about
	// to start computing.
	limit := int64(s.cfg.Workers + s.cfg.QueueDepth)
	n := s.inflight.Add(1)
	if s.closed.Load() {
		s.inflight.Add(-1)
		if bin {
			return closingResponseBin()
		}
		return closingResponse()
	}
	if n > limit {
		s.inflight.Add(-1)
		hint := adaptiveRetryAfter(n, s.cfg.Workers, s.cfg.RetryAfter)
		if bin {
			return busyResponseBin(hint)
		}
		return busyResponse(hint)
	}
	defer s.inflight.Add(-1)

	// The computation itself is bounded by MaxTimeout regardless of
	// the leader's own deadline: followers with longer deadlines must
	// not inherit a shorter one, and an abandoned leader must not pin
	// a worker slot forever.
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.MaxTimeout)
	defer cancel()
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		if bin {
			return timeoutResponseBin(ctx.Err())
		}
		return timeoutResponse(ctx.Err())
	}
	defer func() { <-s.slots }()
	s.m.inflight.Inc()
	defer s.m.inflight.Dec()

	if s.slow != nil {
		s.slow()
	}
	v, err := compute()
	if err != nil {
		if bin {
			return errorResponseBin(err)
		}
		return errorResponse(err)
	}
	if bin {
		return okResponseBin(v)
	}
	return okResponse(v)
}

// maxRetryAfterSecs caps the adaptive Retry-After hint: past this the
// client should treat the service as down, not merely busy.
const maxRetryAfterSecs = 30

// adaptiveRetryAfter derives the 429 Retry-After hint from load at
// rejection time instead of a fixed constant: base is the estimated
// time for the worker pool to drain one full round of work, and the
// hint scales with how many such rounds the current queue represents.
// inflight includes the request being rejected. The hint is clamped to
// [1, maxRetryAfterSecs] whole seconds (the HTTP header's resolution).
func adaptiveRetryAfter(inflight int64, workers int, base time.Duration) int {
	if workers < 1 {
		workers = 1
	}
	queued := inflight - int64(workers)
	if queued < 0 {
		queued = 0
	}
	rounds := (queued + int64(workers) - 1) / int64(workers)
	if rounds < 1 {
		rounds = 1
	}
	secs := int(math.Ceil(base.Seconds() * float64(rounds)))
	if secs < 1 {
		secs = 1
	}
	if secs > maxRetryAfterSecs {
		secs = maxRetryAfterSecs
	}
	return secs
}

// Close drains the service: new requests are refused with 503 while
// already-admitted leaders (and the coalesced waiters sharing their
// results) run to completion. It returns nil once the last in-flight
// leader finishes, or ctx.Err() if the deadline expires with work
// still running. Close is idempotent and one-way: the service stays
// closed. Chaos restarts construct a fresh Service rather than
// reopening a drained one.
func (s *Service) Close(ctx context.Context) error {
	s.closed.Store(true)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.inflight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// schedulerFor returns (possibly from cache) a scheduler for the given
// cluster fingerprint. build runs at most once per cached key; the
// cache is bounded FIFO — old clusters fall out, their schedulers (and
// warm profile caches) are simply rebuilt on next use.
func (s *Service) schedulerFor(key string, build func() (*cluster.Scheduler, error)) (*cluster.Scheduler, error) {
	if s.cfg.SchedulerCacheSize == 0 {
		return build()
	}
	s.schedMu.Lock()
	if sched, ok := s.scheds[key]; ok {
		s.schedMu.Unlock()
		return sched, nil
	}
	s.schedMu.Unlock()

	sched, err := build()
	if err != nil {
		return nil, err
	}
	s.schedMu.Lock()
	defer s.schedMu.Unlock()
	if cached, ok := s.scheds[key]; ok {
		// A concurrent request built the same cluster first; share its
		// scheduler so the profile cache stays shared too.
		return cached, nil
	}
	if len(s.schedOrder) >= s.cfg.SchedulerCacheSize {
		oldest := s.schedOrder[0]
		s.schedOrder = s.schedOrder[1:]
		delete(s.scheds, oldest)
	}
	s.scheds[key] = sched
	s.schedOrder = append(s.schedOrder, key)
	return sched, nil
}

// Stats is a snapshot of the service counters.
type Stats struct {
	// Requests counts every request that reached a handler; OK,
	// BadInput, Rejected, Timeouts, and Failures partition the
	// responses by outcome (2xx, 4xx input, 429, 504, 5xx).
	Requests, OK, BadInput, Rejected, Timeouts, Failures uint64
	// Coalesced counts requests served by joining an identical
	// in-flight computation instead of running their own.
	Coalesced uint64
	// TableHits and TableMisses count decision-table lookups (only
	// taken when Config.Tables is set): hits were answered without
	// touching the worker pool, misses fell through to the exact path.
	TableHits, TableMisses uint64
}

// CoalesceRate returns coalesced over total requests (0 when idle).
func (st Stats) CoalesceRate() float64 {
	if st.Requests == 0 {
		return 0
	}
	return float64(st.Coalesced) / float64(st.Requests)
}

// TableHitRate returns table hits over total table lookups (0 when no
// lookup happened).
func (st Stats) TableHitRate() float64 {
	total := st.TableHits + st.TableMisses
	if total == 0 {
		return 0
	}
	return float64(st.TableHits) / float64(total)
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	return Stats{
		Requests:    s.stats.requests.Load(),
		OK:          s.stats.ok.Load(),
		BadInput:    s.stats.badInput.Load(),
		Rejected:    s.stats.rejected.Load(),
		Timeouts:    s.stats.timeouts.Load(),
		Failures:    s.stats.failures.Load(),
		Coalesced:   s.stats.coalesced.Load(),
		TableHits:   s.stats.tableHits.Load(),
		TableMisses: s.stats.tableMisses.Load(),
	}
}

// timeout resolves a request's timeout_ms field against the service
// bounds: 0 means the default, anything above MaxTimeout is clamped.
func (s *Service) timeout(ms int) time.Duration {
	if ms <= 0 {
		return s.cfg.DefaultTimeout
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// count records a finished request's outcome in both the plain stats
// and the telemetry registry.
func (s *Service) count(route string, code int, elapsed time.Duration) {
	s.stats.requests.Add(1)
	switch {
	case code >= 200 && code < 300:
		s.stats.ok.Add(1)
	case code == http.StatusTooManyRequests:
		s.stats.rejected.Add(1)
	case code == http.StatusGatewayTimeout:
		s.stats.timeouts.Add(1)
	case code >= 400 && code < 500:
		s.stats.badInput.Add(1)
	default:
		s.stats.failures.Add(1)
	}
	s.m.requests(route, code).Inc()
	s.m.latency(route).Observe(elapsed.Seconds())
}
