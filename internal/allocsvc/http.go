package allocsvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/coord"
	"repro/internal/dyncoord"
	"repro/internal/evalpool"
	"repro/internal/hw"
	"repro/internal/nvgov"
	"repro/internal/profile"
	"repro/internal/units"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Route paths served by Register.
const (
	RouteCoord    = "/v1/coord"
	RoutePlan     = "/v1/plan"
	RouteSchedule = "/v1/schedule"
	RouteTree     = "/v1/tree"
	RouteRecoord  = "/v1/recoord"
)

// maxBody bounds binary request bodies; it matches wire.MaxFrame so a
// body the reader admits is also a frame the decoder accepts. Larger
// binary requests are refused with 413 and must travel as JSON.
const maxBody = wire.MaxFrame

// maxJSONBody bounds JSON request bodies. Unlike the binary frame cap
// this is generous: a /v1/schedule round naming tens of thousands of
// nodes and jobs is a legitimate request, and JSON is the designated
// fallback encoding when a round outgrows the binary frame format.
const maxJSONBody = 8 << 20

// now reads the service clock (Config.Now, default time.Now).
func (s *Service) now() time.Time { return s.cfg.Now() }

// since is time.Since against the service clock.
func (s *Service) since(start time.Time) time.Duration { return s.cfg.Now().Sub(start) }

// Register mounts the service's routes on mux.
func (s *Service) Register(mux *http.ServeMux) {
	mux.HandleFunc(RouteCoord, s.handleCoord)
	mux.HandleFunc(RoutePlan, s.handlePlan)
	mux.HandleFunc(RouteSchedule, s.handleSchedule)
	mux.HandleFunc(RouteTree, s.handleTree)
	mux.HandleFunc(RouteRecoord, s.handleRecoord)
}

// Handler returns a mux with only the service routes, for tests and
// embedding.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Register(mux)
	return mux
}

// The request/response shapes live in internal/wire, shared between
// this package's JSON surface and the binary codec; the aliases keep
// allocsvc's exported API unchanged.
type (
	// AllocJSON is an allocation split on the wire.
	AllocJSON = wire.AllocJSON
	// CoordRequest is the body of POST /v1/coord.
	CoordRequest = wire.CoordRequest
	// CoordResponse is the decision for one (platform, workload, budget).
	CoordResponse = wire.CoordResponse
	// PlanRequest is the body of POST /v1/plan.
	PlanRequest = wire.PlanRequest
	// PlanStepJSON is one phase of a plan.
	PlanStepJSON = wire.PlanStepJSON
	// PlanResponse is a dyncoord plan on the wire.
	PlanResponse = wire.PlanResponse
	// NodeJSON names one cluster node for /v1/schedule.
	NodeJSON = wire.NodeJSON
	// JobJSON names one queued job for /v1/schedule.
	JobJSON = wire.JobJSON
	// ScheduleRequest is the body of POST /v1/schedule.
	ScheduleRequest = wire.ScheduleRequest
	// PlacementJSON is one admitted job of a round.
	PlacementJSON = wire.PlacementJSON
	// ScheduleResponse is a scheduling round's outcome on the wire.
	ScheduleResponse = wire.ScheduleResponse
	// TreeNodeJSON names one leaf of a budget tree for /v1/tree.
	TreeNodeJSON = wire.TreeNodeJSON
	// TreeRackJSON is one rack of a budget tree.
	TreeRackJSON = wire.TreeRackJSON
	// TreeRequest is the body of POST /v1/tree.
	TreeRequest = wire.TreeRequest
	// TreeGrantJSON is one kept leaf's share of a solved tree.
	TreeGrantJSON = wire.TreeGrantJSON
	// TreeRackGrantJSON aggregates one rack's share.
	TreeRackGrantJSON = wire.TreeRackGrantJSON
	// TreeShedJSON is one leaf dropped by admission control.
	TreeShedJSON = wire.TreeShedJSON
	// TreeResponse is a solved budget tree on the wire.
	TreeResponse = wire.TreeResponse
	// RecoordRequest is the body of POST /v1/recoord.
	RecoordRequest = wire.RecoordRequest
	// RecoordVisitJSON is one phase interval of a recoord timeline.
	RecoordVisitJSON = wire.RecoordVisitJSON
	// RecoordResponse is one online re-coordination run on the wire.
	RecoordResponse = wire.RecoordResponse
)

// errorJSON is the uniform error body.
type errorJSON struct {
	Error string `json:"error"`
}

// renderJSON marshals v with a trailing newline. Marshalling the
// response types cannot fail (no channels, no cycles); a failure is a
// programmer error surfaced as a 500 body.
func renderJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(errorJSON{Error: "internal: " + err.Error()})
	}
	return append(b, '\n')
}

func okResponse(v any) *response {
	return &response{code: http.StatusOK, body: renderJSON(v)}
}

func errorResponse(err error) *response {
	return &response{code: errorCode(err), body: renderJSON(errorJSON{Error: err.Error()})}
}

// errorCode maps a computation error to its HTTP status: 400 for
// validation failures, 413 for oversized payloads, 500 otherwise.
func errorCode(err error) int {
	var be *badRequestError
	if asBadRequest(err, &be) {
		return http.StatusBadRequest
	}
	if isTooLarge(err) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusInternalServerError
}

func timeoutResponse(err error) *response {
	msg := "deadline exceeded"
	if err != nil {
		msg = err.Error()
	}
	return &response{
		code: http.StatusGatewayTimeout,
		body: renderJSON(errorJSON{Error: "deadline exceeded: " + msg}),
	}
}

func busyResponse(retryAfterSecs int) *response {
	return &response{
		code:       http.StatusTooManyRequests,
		body:       renderJSON(errorJSON{Error: "service saturated; retry later"}),
		retryAfter: retryAfterSecs,
	}
}

func closingResponse() *response {
	return &response{
		code: http.StatusServiceUnavailable,
		body: renderJSON(errorJSON{Error: "service closing; not admitting new requests"}),
	}
}

// badRequestError marks validation failures so errorResponse maps them
// to 400 instead of 500. cause, when set, keeps the originating typed
// error reachable through errors.Is/As (e.g. nvgov.ErrCapOutOfRange).
type badRequestError struct {
	msg   string
	cause error
}

func (e *badRequestError) Error() string { return e.msg }

func (e *badRequestError) Unwrap() error { return e.cause }

func badRequestf(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

func asBadRequest(err error, target **badRequestError) bool {
	for err != nil {
		if be, ok := err.(*badRequestError); ok {
			*target = be
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// tooLargeError marks oversized request or response payloads so the
// handlers answer 413 (and the binary client knows to retry in JSON)
// instead of a generic 400/500.
type tooLargeError struct{ msg string }

func (e *tooLargeError) Error() string { return e.msg }

func tooLargef(format string, args ...any) error {
	return &tooLargeError{msg: fmt.Sprintf(format, args...)}
}

func isTooLarge(err error) bool {
	for err != nil {
		if _, ok := err.(*tooLargeError); ok {
			return true
		}
		if errors.Is(err, wire.ErrFrameTooLarge) {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// decode reads and unmarshals a request body, strictly: unknown fields
// are rejected so typos ("budget" for "budget_watts") fail loudly
// instead of silently meaning zero watts. Oversized bodies surface as
// 413, not 400 — the request may be well-formed, just too big.
func decode(w http.ResponseWriter, r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return tooLargef("request body exceeds %d bytes", mbe.Limit)
		}
		return badRequestf("bad request body: %v", err)
	}
	return nil
}

// serve is the shared handler tail: method check, coalesced execution,
// response write, accounting.
func (s *Service) serve(w http.ResponseWriter, r *http.Request, route, key string, timeout time.Duration, compute func() (any, error)) {
	start := s.now()
	resp := s.do(r.Context(), route, key, timeout, false, compute)
	s.write(w, resp)
	s.count(route, resp.code, s.since(start))
}

// reject short-circuits a request that never reaches the worker pool
// (bad method, bad body), with the same accounting as served requests.
func (s *Service) reject(w http.ResponseWriter, route string, resp *response, start time.Time) {
	s.write(w, resp)
	s.count(route, resp.code, s.since(start))
}

func (s *Service) write(w http.ResponseWriter, resp *response) {
	ct := "application/json"
	if resp.binary {
		ct = wire.ContentType
	}
	w.Header().Set("Content-Type", ct)
	if resp.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(resp.retryAfter))
	}
	w.WriteHeader(resp.code)
	w.Write(resp.body)
}

func methodNotAllowed(r *http.Request) *response {
	return &response{
		code: http.StatusMethodNotAllowed,
		body: renderJSON(errorJSON{Error: "method " + r.Method + " not allowed; use POST"}),
	}
}

// platformNames renders the catalog's platform names, optionally
// filtered by kind, for actionable error messages.
func platformNames(kind hw.Kind, any bool) string {
	var names []string
	for _, p := range hw.AllPlatforms() {
		if any || p.Kind == kind {
			names = append(names, p.Name)
		}
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// resolvePair validates a (platform, workload) request pair: both must
// exist and their kinds must match.
func resolvePair(platform, wl string) (hw.Platform, workload.Workload, error) {
	p, err := hw.PlatformByName(platform)
	if err != nil {
		return hw.Platform{}, workload.Workload{}, badRequestf(
			"unknown platform %q (supported: %s)", platform, platformNames(0, true))
	}
	w, err := workload.ByName(wl)
	if err != nil {
		return hw.Platform{}, workload.Workload{}, badRequestf("unknown workload %q", wl)
	}
	if w.Kind != p.Kind {
		return hw.Platform{}, workload.Workload{}, badRequestf(
			"workload %q is a %s workload but platform %q is a %s platform",
			wl, w.Kind, platform, p.Kind)
	}
	return p, w, nil
}

// budgetBits renders a float into the coalescing key exactly: two
// budgets coalesce only when bit-identical, the same content-key
// discipline the evalpool memo cache uses.
func budgetBits(v float64) string {
	return strconv.FormatUint(math.Float64bits(v), 16)
}

func checkBudget(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		return badRequestf("budget_watts must be a positive finite number, got %v", v)
	}
	return nil
}

// handleCoord serves POST /v1/coord.
func (s *Service) handleCoord(w http.ResponseWriter, r *http.Request) {
	start := s.now()
	if isBinary(r) {
		s.serveBinaryHTTP(w, r, RouteCoord, start, s.serveBinaryCoord)
		return
	}
	if r.Method != http.MethodPost {
		s.reject(w, RouteCoord, methodNotAllowed(r), start)
		return
	}
	var req CoordRequest
	if err := decode(w, r, &req); err != nil {
		s.reject(w, RouteCoord, errorResponse(err), start)
		return
	}
	if req.Strategy == "" {
		req.Strategy = "coord"
	}
	if !s.closed.Load() {
		var out CoordResponse
		if s.tableCoord(&req, &out) {
			s.reject(w, RouteCoord, okResponse(out), start)
			return
		}
	}
	key := strings.Join([]string{
		RouteCoord, req.Platform, req.Workload, req.Strategy, budgetBits(req.Budget),
	}, "|")
	s.serve(w, r, RouteCoord, key, s.timeout(req.TimeoutMS), func() (any, error) {
		resp, err := ComputeCoord(req)
		if err != nil {
			return nil, err
		}
		return resp, nil
	})
}

// ComputeCoord computes one /v1/coord decision in-process: it is the
// exact computation the service runs behind POST /v1/coord, exported
// so allocclient's degraded mode can serve coordination answers
// locally when every shard is unreachable — a degraded answer is
// content-identical to a served one.
func ComputeCoord(req CoordRequest) (CoordResponse, error) {
	if req.Strategy == "" {
		req.Strategy = "coord"
	}
	if err := checkBudget(req.Budget); err != nil {
		return CoordResponse{}, err
	}
	p, wl, err := resolvePair(req.Platform, req.Workload)
	if err != nil {
		return CoordResponse{}, err
	}
	budget := units.Power(req.Budget)
	if p.Kind == hw.KindGPU && budget < p.GPU.MinCap {
		// No settable power cap fits under this budget: the board floor
		// exceeds it. Surface the card's typed rejection instead of
		// silently evaluating at a clamped cap the budget cannot fund
		// (reachable on H100-class cards, whose floor is 200 W).
		capErr := nvgov.CheckCap(p.GPU, budget)
		return CoordResponse{}, &badRequestError{
			msg: fmt.Sprintf("budget %v is below the card's settable cap floor: %v",
				budget, capErr),
			cause: capErr,
		}
	}
	resp := CoordResponse{
		Platform: p.Name, Workload: wl.Name, Kind: p.Kind.String(),
		Strategy: req.Strategy, Budget: req.Budget,
	}

	var d coord.Decision
	var evalReq evalpool.Request
	switch p.Kind {
	case hw.KindCPU:
		prof, err := profile.ProfileCPU(p, wl)
		if err != nil {
			return CoordResponse{}, err
		}
		st, ok := cpuStrategy(req.Strategy)
		if !ok {
			return CoordResponse{}, badRequestf("unknown CPU strategy %q (supported: %s)",
				req.Strategy, strategyNames(hw.KindCPU))
		}
		d = st(prof, budget)
		evalReq = evalpool.Request{Op: evalpool.OpCPU, Proc: d.Alloc.Proc, Mem: d.Alloc.Mem}
	case hw.KindGPU:
		prof, err := profile.ProfileGPU(p, wl)
		if err != nil {
			return CoordResponse{}, err
		}
		st, ok := gpuStrategy(req.Strategy)
		if !ok {
			return CoordResponse{}, badRequestf("unknown GPU strategy %q (supported: %s)",
				req.Strategy, strategyNames(hw.KindGPU))
		}
		d = st(prof, budget)
		// The card cannot be capped below its floor (same rule the
		// cluster scheduler applies when it simulates a placement).
		cap := d.Alloc.Total()
		if cap < p.GPU.MinCap {
			cap = p.GPU.MinCap
		}
		evalReq = evalpool.Request{Op: evalpool.OpGPUMemPower, Proc: cap, Mem: d.Alloc.Mem}
	}

	resp.Status = d.Status.String()
	if d.Status == coord.StatusTooSmall {
		return resp, nil
	}
	resp.Alloc = &AllocJSON{ProcWatts: d.Alloc.Proc.Watts(), MemWatts: d.Alloc.Mem.Watts()}
	resp.SurplusWatts = d.Surplus.Watts()
	res, err := evalpool.Default().Evaluate(evalpool.Problem{Platform: p, Workload: wl}, evalReq)
	if err != nil {
		return CoordResponse{}, err
	}
	resp.ExpectedPerf = res.Perf
	resp.PerfUnit = wl.PerfUnit
	resp.ExpectedPower = res.TotalPower.Watts()
	return resp, nil
}

func cpuStrategy(name string) (func(profile.CPUProfile, units.Power) coord.Decision, bool) {
	for _, st := range coord.CPUStrategies() {
		if st.Name == name {
			return st.Decide, true
		}
	}
	return nil, false
}

func gpuStrategy(name string) (func(profile.GPUProfile, units.Power) coord.Decision, bool) {
	for _, st := range coord.GPUStrategies() {
		if st.Name == name {
			return st.Decide, true
		}
	}
	return nil, false
}

func strategyNames(kind hw.Kind) string {
	var names []string
	if kind == hw.KindCPU {
		for _, st := range coord.CPUStrategies() {
			names = append(names, st.Name)
		}
	} else {
		for _, st := range coord.GPUStrategies() {
			names = append(names, st.Name)
		}
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// handlePlan serves POST /v1/plan.
func (s *Service) handlePlan(w http.ResponseWriter, r *http.Request) {
	start := s.now()
	if isBinary(r) {
		s.serveBinaryHTTP(w, r, RoutePlan, start, s.serveBinaryPlan)
		return
	}
	if r.Method != http.MethodPost {
		s.reject(w, RoutePlan, methodNotAllowed(r), start)
		return
	}
	var req PlanRequest
	if err := decode(w, r, &req); err != nil {
		s.reject(w, RoutePlan, errorResponse(err), start)
		return
	}
	if !s.closed.Load() {
		var out PlanResponse
		if s.tablePlan(&req, &out) {
			s.reject(w, RoutePlan, okResponse(out), start)
			return
		}
	}
	key := strings.Join([]string{
		RoutePlan, req.Platform, req.Workload, budgetBits(req.Budget),
	}, "|")
	s.serve(w, r, RoutePlan, key, s.timeout(req.TimeoutMS), func() (any, error) {
		resp, err := ComputePlan(req)
		if err != nil {
			return nil, err
		}
		return resp, nil
	})
}

// ComputePlan computes one /v1/plan decision in-process — the exact
// computation behind POST /v1/plan, exported for allocclient's
// degraded mode.
func ComputePlan(req PlanRequest) (PlanResponse, error) {
	if err := checkBudget(req.Budget); err != nil {
		return PlanResponse{}, err
	}
	p, wl, err := resolvePair(req.Platform, req.Workload)
	if err != nil {
		return PlanResponse{}, err
	}
	if p.Kind != hw.KindCPU {
		return PlanResponse{}, badRequestf(
			"plan supports CPU platforms only; %q is a GPU platform (supported: %s)",
			p.Name, platformNames(hw.KindCPU, false))
	}
	plan, err := dyncoord.PlanCPUOrDegrade(p, wl, units.Power(req.Budget))
	if err != nil {
		return PlanResponse{}, err
	}
	resp := PlanResponse{
		Platform: p.Name, Workload: wl.Name, Budget: req.Budget,
		Rejected: plan.Rejected(),
	}
	for _, st := range plan.Steps {
		resp.Steps = append(resp.Steps, PlanStepJSON{
			Phase:  st.Phase,
			Weight: st.Weight,
			Alloc: AllocJSON{
				ProcWatts: st.Alloc.Proc.Watts(), MemWatts: st.Alloc.Mem.Watts(),
			},
			Status:   st.Status.String(),
			FellBack: st.FellBack,
		})
	}
	return resp, nil
}

// handleSchedule serves POST /v1/schedule.
func (s *Service) handleSchedule(w http.ResponseWriter, r *http.Request) {
	start := s.now()
	if isBinary(r) {
		s.serveBinaryHTTP(w, r, RouteSchedule, start, s.serveBinarySchedule)
		return
	}
	if r.Method != http.MethodPost {
		s.reject(w, RouteSchedule, methodNotAllowed(r), start)
		return
	}
	var req ScheduleRequest
	if err := decode(w, r, &req); err != nil {
		s.reject(w, RouteSchedule, errorResponse(err), start)
		return
	}
	key := scheduleKey(&req)
	s.serve(w, r, RouteSchedule, key, s.timeout(req.TimeoutMS), func() (any, error) {
		return s.computeSchedule(req)
	})
}

// scheduleKey fingerprints the full round content: budget, node list,
// and job queue (order matters — the scheduler is order-sensitive).
func scheduleKey(req *ScheduleRequest) string {
	var b strings.Builder
	b.WriteString(RouteSchedule)
	b.WriteByte('|')
	b.WriteString(budgetBits(req.Budget))
	for _, n := range req.Nodes {
		b.WriteString("|n:")
		b.WriteString(n.ID)
		b.WriteByte('=')
		b.WriteString(n.Platform)
	}
	for _, j := range req.Jobs {
		b.WriteString("|j:")
		b.WriteString(j.ID)
		b.WriteByte('=')
		b.WriteString(j.Workload)
	}
	return b.String()
}

// clusterKey is the scheduler-cache key: the cluster alone (budget +
// nodes), so successive rounds with different job queues share one
// scheduler and its warm profile caches.
func clusterKey(req *ScheduleRequest) string {
	var b strings.Builder
	b.WriteString(budgetBits(req.Budget))
	for _, n := range req.Nodes {
		b.WriteString("|")
		b.WriteString(n.ID)
		b.WriteByte('=')
		b.WriteString(n.Platform)
	}
	return b.String()
}

func (s *Service) computeSchedule(req ScheduleRequest) (any, error) {
	if err := checkBudget(req.Budget); err != nil {
		return nil, err
	}
	if len(req.Nodes) == 0 {
		return nil, badRequestf("at least one node is required")
	}
	if len(req.Jobs) == 0 {
		return nil, badRequestf("at least one job is required")
	}
	sched, err := s.schedulerFor(clusterKey(&req), func() (*cluster.Scheduler, error) {
		nodes := make([]cluster.Node, len(req.Nodes))
		for i, n := range req.Nodes {
			p, err := hw.PlatformByName(n.Platform)
			if err != nil {
				return nil, badRequestf("node %q: unknown platform %q (supported: %s)",
					n.ID, n.Platform, platformNames(0, true))
			}
			nodes[i] = cluster.Node{ID: n.ID, Platform: p}
		}
		sched, err := cluster.NewScheduler(units.Power(req.Budget), nodes)
		if err != nil {
			return nil, badRequestf("%v", err)
		}
		if s.cfg.Tables != nil {
			// The operator opted into precompute-at-startup semantics;
			// extend it to the cluster side so a fresh scheduler never
			// profiles on the request path. A failed pair degrades to
			// lazy profiling, exactly as without prewarming.
			_ = sched.Prewarm(workload.AllWorkloads())
		}
		return sched, nil
	})
	if err != nil {
		return nil, err
	}
	jobs := make([]cluster.Job, len(req.Jobs))
	for i, j := range req.Jobs {
		wl, err := workload.ByName(j.Workload)
		if err != nil {
			return nil, badRequestf("job %q: unknown workload %q", j.ID, j.Workload)
		}
		jobs[i] = cluster.Job{ID: j.ID, Workload: wl}
	}
	out, err := sched.Schedule(jobs)
	if err != nil {
		return nil, err
	}
	resp := ScheduleResponse{
		PoolLeft:   out.PoolLeft.Watts(),
		TotalPower: out.TotalExpectedPower.Watts(),
		Deferred:   out.Deferred,
		Placements: []PlacementJSON{},
	}
	for _, pl := range out.Placements {
		resp.Placements = append(resp.Placements, PlacementJSON{
			Job:    pl.JobID,
			Node:   pl.NodeID,
			Budget: pl.Budget.Watts(),
			Alloc: AllocJSON{
				ProcWatts: pl.Alloc.Proc.Watts(), MemWatts: pl.Alloc.Mem.Watts(),
			},
			ExpectedPerf:  pl.ExpectedPerf,
			ExpectedPower: pl.ExpectedPower.Watts(),
		})
	}
	return resp, nil
}
