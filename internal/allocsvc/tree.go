package allocsvc

import (
	"context"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/powertree"
	"repro/internal/units"
	"repro/internal/wire"
)

// handleTree serves POST /v1/tree: one hierarchical division of a
// datacenter budget over racks of nodes. Unlike coord/plan the route is
// deliberately table-unaware — a tree solve is a cross-node water-fill,
// not a per-pair lookup — and its compute stays unexported so the
// degraded-local client cannot impersonate it (the curve profiles live
// server-side, like the cluster scheduler's caches).
func (s *Service) handleTree(w http.ResponseWriter, r *http.Request) {
	start := s.now()
	if isBinary(r) {
		s.serveBinaryHTTP(w, r, RouteTree, start, s.serveBinaryTree)
		return
	}
	if r.Method != http.MethodPost {
		s.reject(w, RouteTree, methodNotAllowed(r), start)
		return
	}
	var req TreeRequest
	if err := decode(w, r, &req); err != nil {
		s.reject(w, RouteTree, errorResponse(err), start)
		return
	}
	key := treeKey(&req)
	s.serve(w, r, RouteTree, key, s.timeout(req.TimeoutMS), func() (any, error) {
		return computeTree(req)
	})
}

// treeKey fingerprints the full tree content: budget, racks (with
// caps), and every leaf's pair and priority, in request order.
func treeKey(req *TreeRequest) string {
	var b strings.Builder
	b.WriteString(RouteTree)
	b.WriteByte('|')
	b.WriteString(budgetBits(req.Budget))
	for _, rack := range req.Racks {
		b.WriteString("|r:")
		b.WriteString(rack.ID)
		b.WriteByte('@')
		b.WriteString(budgetBits(rack.CapWatts))
		for _, n := range rack.Nodes {
			b.WriteString("|n:")
			b.WriteString(n.ID)
			b.WriteByte('=')
			b.WriteString(n.Platform)
			b.WriteByte('/')
			b.WriteString(n.Workload)
			b.WriteByte('^')
			b.WriteString(strconv.Itoa(n.Priority))
		}
	}
	return b.String()
}

// treeSpec converts the wire request into a powertree spec, resolving
// catalog names with the same diagnostics as the other routes.
func treeSpec(req *TreeRequest) (powertree.Spec, error) {
	if len(req.Racks) == 0 {
		return powertree.Spec{}, badRequestf("at least one rack is required")
	}
	spec := powertree.Spec{Racks: make([]powertree.Rack, 0, len(req.Racks))}
	for _, rj := range req.Racks {
		rack := powertree.Rack{
			ID:    rj.ID,
			Cap:   units.Power(rj.CapWatts),
			Nodes: make([]powertree.Node, 0, len(rj.Nodes)),
		}
		for _, nj := range rj.Nodes {
			p, wl, err := resolvePair(nj.Platform, nj.Workload)
			if err != nil {
				return powertree.Spec{}, err
			}
			rack.Nodes = append(rack.Nodes, powertree.Node{
				ID: nj.ID, Platform: p, Workload: wl, Priority: nj.Priority,
			})
		}
		spec.Racks = append(spec.Racks, rack)
	}
	if err := spec.Validate(); err != nil {
		return powertree.Spec{}, badRequestf("invalid tree: %v", err)
	}
	return spec, nil
}

// computeTree solves one tree request. It is intentionally not
// exported: /v1/tree has no degraded-local fallback in allocclient.
func computeTree(req TreeRequest) (any, error) {
	if err := checkBudget(req.Budget); err != nil {
		return nil, err
	}
	spec, err := treeSpec(&req)
	if err != nil {
		return nil, err
	}
	res, err := powertree.Solve(spec, units.Power(req.Budget))
	if err != nil {
		return nil, err
	}
	resp := TreeResponse{
		Budget:           res.Budget.Watts(),
		Granted:          res.Granted.Watts(),
		Surplus:          res.Surplus.Watts(),
		TotalPerf:        res.TotalPerf,
		Oversubscription: res.Oversubscription,
		Grants:           []TreeGrantJSON{},
		Racks:            []TreeRackGrantJSON{},
	}
	for _, g := range res.Grants {
		resp.Grants = append(resp.Grants, TreeGrantJSON{
			Node:     g.Node,
			Rack:     g.Rack,
			Priority: g.Priority,
			Budget:   g.Budget.Watts(),
			Alloc: AllocJSON{
				ProcWatts: g.Alloc.Proc.Watts(), MemWatts: g.Alloc.Mem.Watts(),
			},
			Status:       g.Status.String(),
			SurplusWatts: g.Surplus.Watts(),
			ExpectedPerf: g.Perf,
		})
	}
	for _, rr := range res.Racks {
		resp.Racks = append(resp.Racks, TreeRackGrantJSON{
			Rack:     rr.Rack,
			CapWatts: rr.Cap.Watts(),
			Budget:   rr.Budget.Watts(),
			Kept:     rr.Kept,
			Shed:     rr.Shed,
		})
	}
	for _, sh := range res.Shed {
		resp.Shed = append(resp.Shed, TreeShedJSON{
			Node:       sh.Node,
			Rack:       sh.Rack,
			Priority:   sh.Priority,
			FloorWatts: sh.Floor.Watts(),
			Reason:     sh.Reason,
		})
	}
	return resp, nil
}

type treeScratch struct {
	req TreeRequest
}

var treeScratchPool = sync.Pool{New: func() any { return &treeScratch{} }}

func getTreeScratch() *treeScratch {
	sc := treeScratchPool.Get().(*treeScratch)
	racks := sc.req.Racks
	sc.req = TreeRequest{Racks: racks[:0]}
	return sc
}

func (s *Service) serveBinaryTree(ctx context.Context, frame, dst []byte) (int, int, []byte) {
	sc := getTreeScratch()
	defer treeScratchPool.Put(sc)
	if err := wire.DecodeTreeRequest(frame, &sc.req); err != nil {
		return http.StatusBadRequest, 0, wire.AppendError(dst, http.StatusBadRequest, err.Error())
	}
	// Deep-copy: the compute closure may outlive the pooled scratch.
	req := sc.req
	req.Racks = append([]TreeRackJSON(nil), sc.req.Racks...)
	for i := range req.Racks {
		req.Racks[i].Nodes = append([]TreeNodeJSON(nil), req.Racks[i].Nodes...)
	}
	key := treeKey(&req) + "|bin"
	resp := s.do(ctx, RouteTree, key, s.timeout(req.TimeoutMS), true, func() (any, error) {
		return computeTree(req)
	})
	return resp.code, resp.retryAfter, append(dst, resp.body...)
}
