package allocsvc

import (
	"bytes"
	"context"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// post sends body to route on the test server and returns the full
// response.
func post(t *testing.T, srv *httptest.Server, route, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+route, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", route, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, buf.Bytes()
}

func newTestService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return svc, srv
}

// TestGoldenResponses pins the exact wire bytes of each route: the
// responses are pure functions of the request, so any drift is either
// an intended format change (update the goldens) or a regression.
func TestGoldenResponses(t *testing.T) {
	_, srv := newTestService(t, Config{Workers: 2})
	cases := []struct {
		name, route, body string
	}{
		{"coord_cpu", RouteCoord,
			`{"platform":"ivybridge","workload":"stream","budget_watts":208}`},
		{"coord_cpu_surplus", RouteCoord,
			`{"platform":"ivybridge","workload":"stream","budget_watts":400}`},
		{"coord_cpu_toosmall", RouteCoord,
			`{"platform":"ivybridge","workload":"stream","budget_watts":40}`},
		{"coord_gpu", RouteCoord,
			`{"platform":"titanxp","workload":"gpustream","budget_watts":180}`},
		{"coord_memfirst", RouteCoord,
			`{"platform":"haswell","workload":"dgemm","budget_watts":220,"strategy":"memory-first"}`},
		{"plan_ft", RoutePlan,
			`{"platform":"ivybridge","workload":"ft","budget_watts":180}`},
		{"schedule_mixed", RouteSchedule,
			`{"budget_watts":500,` +
				`"nodes":[{"id":"n1","platform":"ivybridge"},{"id":"n2","platform":"ivybridge"}],` +
				`"jobs":[{"id":"j1","workload":"stream"},{"id":"j2","workload":"dgemm"},{"id":"j3","workload":"mg"}]}`},
		{"err_unknown_platform", RouteCoord,
			`{"platform":"epyc","workload":"stream","budget_watts":100}`},
		{"err_kind_mismatch", RouteCoord,
			`{"platform":"titanv","workload":"stream","budget_watts":100}`},
		{"err_plan_gpu", RoutePlan,
			`{"platform":"titanv","workload":"gpustream","budget_watts":150}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, got := post(t, srv, tc.route, tc.body)
			if strings.HasPrefix(tc.name, "err_") {
				if resp.StatusCode != http.StatusBadRequest {
					t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, got)
				}
			} else if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d, want 200; body %s", resp.StatusCode, got)
			}
			path := filepath.Join("testdata", tc.name+".golden.json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("response drifted from golden:\ngot:  %s\nwant: %s", got, want)
			}
		})
	}
}

// TestRepeatedRequestsByteIdentical: the same request served twice —
// cold and warm caches — returns identical bytes.
func TestRepeatedRequestsByteIdentical(t *testing.T) {
	_, srv := newTestService(t, Config{Workers: 2})
	body := `{"platform":"haswell","workload":"stream","budget_watts":190}`
	_, first := post(t, srv, RouteCoord, body)
	_, second := post(t, srv, RouteCoord, body)
	if !bytes.Equal(first, second) {
		t.Errorf("repeated request bodies differ:\n%s\n%s", first, second)
	}
}

// TestCoalescedDuplicatesShareOneComputation holds a leader request in
// the worker, piles identical duplicates behind it, and checks that
// the duplicates were coalesced and every caller got byte-identical
// bytes.
func TestCoalescedDuplicatesShareOneComputation(t *testing.T) {
	svc, srv := newTestService(t, Config{Workers: 1})
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	var computed int
	var mu sync.Mutex
	svc.slow = func() {
		mu.Lock()
		computed++
		mu.Unlock()
		entered <- struct{}{}
		<-release
	}

	const dup = 4
	body := `{"platform":"ivybridge","workload":"dgemm","budget_watts":170}`
	bodies := make([][]byte, dup)
	codes := make([]int, dup)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, b := post(t, srv, RouteCoord, body)
		codes[0], bodies[0] = resp.StatusCode, b
	}()
	<-entered // leader is inside the worker slot

	for i := 1; i < dup; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := post(t, srv, RouteCoord, body)
			codes[i], bodies[i] = resp.StatusCode, b
		}(i)
	}
	// Wait until every duplicate has joined the in-flight call.
	for start := time.Now(); svc.Stats().Coalesced < dup-1; {
		if time.Since(start) > 5*time.Second {
			t.Fatalf("followers never coalesced: %+v", svc.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i := 0; i < dup; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs from leader:\n%s\n%s", i, bodies[i], bodies[0])
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if computed != 1 {
		t.Errorf("computation ran %d times for %d identical requests", computed, dup)
	}
	if st := svc.Stats(); st.Coalesced != dup-1 {
		t.Errorf("Coalesced = %d, want %d", st.Coalesced, dup-1)
	}
}

// TestDeadlineExceededReturns504: a request whose deadline expires
// while the computation is still running gets 504, not a hung
// connection.
func TestDeadlineExceededReturns504(t *testing.T) {
	svc, srv := newTestService(t, Config{Workers: 1})
	release := make(chan struct{})
	svc.slow = func() { <-release }
	defer close(release)

	resp, body := post(t, srv, RouteCoord,
		`{"platform":"ivybridge","workload":"stream","budget_watts":208,"timeout_ms":1}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "deadline exceeded") {
		t.Errorf("body %s does not mention the deadline", body)
	}
	if st := svc.Stats(); st.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", st.Timeouts)
	}
}

// TestQueueFullReturns429 saturates a Workers=1, QueueDepth=0 service
// and checks that the next (distinct) request is refused immediately
// with 429 and a Retry-After hint.
func TestQueueFullReturns429(t *testing.T) {
	svc, srv := newTestService(t, Config{
		Workers: 1, QueueDepth: -1, RetryAfter: 2 * time.Second,
	})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	svc.slow = func() { entered <- struct{}{}; <-release }

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, b := post(t, srv, RouteCoord,
			`{"platform":"ivybridge","workload":"stream","budget_watts":208}`)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("occupying request: status %d, body %s", resp.StatusCode, b)
		}
	}()
	<-entered // the single worker slot is now held

	resp, body := post(t, srv, RouteCoord,
		`{"platform":"ivybridge","workload":"dgemm","budget_watts":170}`)
	close(release)
	wg.Wait()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	if st := svc.Stats(); st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
}

// TestBadInputs pins the client-error surface: wrong method, malformed
// body, unknown field, non-positive budget, empty cluster.
func TestBadInputs(t *testing.T) {
	_, srv := newTestService(t, Config{Workers: 2})

	resp, err := http.Get(srv.URL + RouteCoord)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", resp.StatusCode)
	}

	cases := []struct {
		name, route, body, wantIn string
	}{
		{"malformed", RouteCoord, `{"platform":`, "bad request body"},
		{"unknown_field", RouteCoord,
			`{"platform":"ivybridge","workload":"stream","budget":208}`, "bad request body"},
		{"zero_budget", RouteCoord,
			`{"platform":"ivybridge","workload":"stream","budget_watts":0}`, "budget_watts"},
		{"nan_budget", RoutePlan,
			`{"platform":"ivybridge","workload":"stream","budget_watts":-5}`, "budget_watts"},
		{"no_nodes", RouteSchedule,
			`{"budget_watts":500,"jobs":[{"id":"j","workload":"stream"}]}`, "node"},
		{"no_jobs", RouteSchedule,
			`{"budget_watts":500,"nodes":[{"id":"n","platform":"ivybridge"}]}`, "job"},
		{"bad_strategy", RouteCoord,
			`{"platform":"ivybridge","workload":"stream","budget_watts":208,"strategy":"magic"}`,
			"unknown CPU strategy"},
		{"dup_node", RouteSchedule,
			`{"budget_watts":500,"nodes":[{"id":"n","platform":"ivybridge"},{"id":"n","platform":"ivybridge"}],` +
				`"jobs":[{"id":"j","workload":"stream"}]}`, "duplicate node"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, srv, tc.route, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, body)
			}
			if !strings.Contains(string(body), tc.wantIn) {
				t.Errorf("body %s does not mention %q", body, tc.wantIn)
			}
		})
	}
}

// TestScheduleReusesCachedScheduler: two rounds over the same cluster
// with different queues share one scheduler (and so one profile
// cache); a different cluster gets its own.
func TestScheduleReusesCachedScheduler(t *testing.T) {
	svc, srv := newTestService(t, Config{Workers: 2})
	round := func(jobs string) {
		resp, body := post(t, srv, RouteSchedule,
			`{"budget_watts":500,"nodes":[{"id":"n1","platform":"ivybridge"}],"jobs":`+jobs+`}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, body %s", resp.StatusCode, body)
		}
	}
	round(`[{"id":"j1","workload":"stream"}]`)
	round(`[{"id":"j2","workload":"dgemm"}]`)
	svc.schedMu.Lock()
	n := len(svc.scheds)
	svc.schedMu.Unlock()
	if n != 1 {
		t.Errorf("scheduler cache has %d entries after two same-cluster rounds, want 1", n)
	}

	resp, body := post(t, srv, RouteSchedule,
		`{"budget_watts":400,"nodes":[{"id":"n1","platform":"haswell"}],"jobs":[{"id":"j1","workload":"stream"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	svc.schedMu.Lock()
	n = len(svc.scheds)
	svc.schedMu.Unlock()
	if n != 2 {
		t.Errorf("scheduler cache has %d entries after a second cluster, want 2", n)
	}
}

// TestSchedulerCacheBounded: the FIFO bound holds.
func TestSchedulerCacheBounded(t *testing.T) {
	svc, srv := newTestService(t, Config{Workers: 2, SchedulerCacheSize: 2})
	budgets := []string{"300", "400", "500"}
	for _, b := range budgets {
		resp, body := post(t, srv, RouteSchedule,
			`{"budget_watts":`+b+`,"nodes":[{"id":"n1","platform":"ivybridge"}],"jobs":[{"id":"j1","workload":"stream"}]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("budget %s: status = %d, body %s", b, resp.StatusCode, body)
		}
	}
	svc.schedMu.Lock()
	defer svc.schedMu.Unlock()
	if len(svc.scheds) != 2 || len(svc.schedOrder) != 2 {
		t.Errorf("cache size = %d (order %d), want 2", len(svc.scheds), len(svc.schedOrder))
	}
}

// TestAdaptiveRetryAfter pins the load → Retry-After mapping: the hint
// scales with how many worker-pool drains the current queue represents,
// clamped to [1, 30] whole seconds.
func TestAdaptiveRetryAfter(t *testing.T) {
	cases := []struct {
		name     string
		inflight int64
		workers  int
		base     time.Duration
		want     int
	}{
		{"empty_queue", 1, 4, time.Second, 1},
		{"first_reject_small_pool", 2, 1, 2 * time.Second, 2},
		{"one_round_queued", 3, 2, time.Second, 1},
		{"three_rounds_queued", 7, 2, time.Second, 3},
		{"subsecond_base_rounds_up", 10, 4, 500 * time.Millisecond, 1},
		{"subsecond_base_two_rounds", 13, 4, 500 * time.Millisecond, 2},
		{"deep_queue_clamped", 100, 2, time.Second, 30},
		{"zero_workers_guarded", 5, 0, time.Second, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := adaptiveRetryAfter(tc.inflight, tc.workers, tc.base); got != tc.want {
				t.Errorf("adaptiveRetryAfter(%d, %d, %v) = %d, want %d",
					tc.inflight, tc.workers, tc.base, got, tc.want)
			}
		})
	}
}

// TestRetryAfterScalesWithQueueDepth drives a saturated service twice —
// shallow and deep queue — and checks the wire header grows with load.
func TestRetryAfterScalesWithQueueDepth(t *testing.T) {
	svc, srv := newTestService(t, Config{
		Workers: 1, QueueDepth: -1, RetryAfter: time.Second,
	})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	svc.slow = func() { entered <- struct{}{}; <-release }
	defer close(release)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		post(t, srv, RouteCoord, `{"platform":"ivybridge","workload":"stream","budget_watts":208}`)
	}()
	<-entered

	resp, _ := post(t, srv, RouteCoord, `{"platform":"ivybridge","workload":"dgemm","budget_watts":170}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	// Workers=1, one computing, this request makes inflight 2: one
	// round of drain → the base hint.
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	wg.Wait()
}

// TestCloseDrains: Close refuses new work with 503 while the admitted
// request runs to completion, then returns nil.
func TestCloseDrains(t *testing.T) {
	svc, srv := newTestService(t, Config{Workers: 1})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	svc.slow = func() { entered <- struct{}{}; <-release }

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, b := post(t, srv, RouteCoord,
			`{"platform":"ivybridge","workload":"stream","budget_watts":208}`)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("draining request: status %d, body %s", resp.StatusCode, b)
		}
	}()
	<-entered // the request is inside the worker

	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		closed <- svc.Close(ctx)
	}()

	// Wait until Close has flipped the admission gate, then check new
	// work is refused.
	for start := time.Now(); !svc.closed.Load(); {
		if time.Since(start) > time.Second {
			t.Fatal("Close never set the closed flag")
		}
		time.Sleep(time.Millisecond)
	}
	resp, body := post(t, srv, RouteCoord,
		`{"platform":"ivybridge","workload":"dgemm","budget_watts":170}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-Close status = %d, want 503; body %s", resp.StatusCode, body)
	}

	select {
	case err := <-closed:
		t.Fatalf("Close returned %v before the in-flight request finished", err)
	default:
	}
	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("Close = %v, want nil after drain", err)
	}
	wg.Wait()
}

// TestCloseDeadline: Close gives up with the ctx error when in-flight
// work outlives the drain budget.
func TestCloseDeadline(t *testing.T) {
	svc, srv := newTestService(t, Config{Workers: 1})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	svc.slow = func() { entered <- struct{}{}; <-release }

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		post(t, srv, RouteCoord, `{"platform":"ivybridge","workload":"stream","budget_watts":208}`)
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := svc.Close(ctx); err != context.DeadlineExceeded {
		t.Errorf("Close = %v, want context.DeadlineExceeded", err)
	}
	close(release)
	wg.Wait()
}

// TestTelemetryRegistered: serving requests populates the service
// metric families on the registry.
func TestTelemetryRegistered(t *testing.T) {
	svc, srv := newTestService(t, Config{Workers: 2, Registry: telemetry.New()})
	_, _ = post(t, srv, RouteCoord,
		`{"platform":"ivybridge","workload":"stream","budget_watts":208}`)
	if got := svc.m.requests(RouteCoord, 200).Value(); got != 1 {
		t.Errorf("allocsvc_requests_total{/v1/coord,200} = %v, want 1", got)
	}
	if got := svc.m.inflight.Value(); got != 0 {
		t.Errorf("allocsvc_inflight = %v after quiescence, want 0", got)
	}
}
