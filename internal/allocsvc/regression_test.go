package allocsvc

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/nvgov"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/wire"
)

// TestLatencyHistogramDeterministic pins the request-latency histogram
// under an injected clock: a clock advancing a fixed step per reading
// makes every request's observed latency exactly one step, so the
// histogram's count, sum, and bucket placement are exact values, not
// wall-clock-dependent ranges. This is the regression net for the
// serving path's clock plumbing — a handler that reads time.Now
// directly (the old bug) produces nondeterministic observations and
// fails the exact-sum comparison.
func TestLatencyHistogramDeterministic(t *testing.T) {
	const step = 3 * time.Millisecond
	base := time.Unix(1700000000, 0)
	var ticks atomic.Int64
	reg := telemetry.New()
	_, srv := newTestService(t, Config{
		Workers:  2,
		Registry: reg,
		Now: func() time.Time {
			return base.Add(time.Duration(ticks.Add(1)-1) * step)
		},
	})

	const n = 5
	for i := 0; i < n; i++ {
		resp, _ := post(t, srv, RouteCoord,
			`{"platform":"ivybridge","workload":"stream","budget_watts":208}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}

	// Each request reads the clock twice around the serve (start, then
	// finish), so every observation is exactly one step.
	want := 0.0
	for i := 0; i < n; i++ {
		want += step.Seconds()
	}

	var pt *telemetry.Point
	snap := reg.Snapshot()
	for i := range snap.Points {
		p := &snap.Points[i]
		if p.Name != "allocsvc_request_seconds" {
			continue
		}
		for _, l := range p.Labels {
			if l.Key == "route" && l.Value == RouteCoord {
				pt = p
			}
		}
	}
	if pt == nil {
		t.Fatal("no allocsvc_request_seconds series for /v1/coord")
	}
	if pt.Count != n {
		t.Fatalf("histogram count = %d, want %d", pt.Count, n)
	}
	if pt.Sum != want {
		t.Fatalf("histogram sum = %v, want exactly %v", pt.Sum, want)
	}
	for _, bk := range pt.Buckets {
		wantC := uint64(0)
		if bk.Upper >= step.Seconds() {
			wantC = n
		}
		if bk.Count != wantC {
			t.Errorf("bucket le=%v count = %d, want %d", bk.Upper, bk.Count, wantC)
		}
	}
}

// TestBinaryRequestBodyTooLarge413: a binary body past the frame cap
// answers 413 with a decodable binary error frame — not a generic 400 —
// so the client knows to retry the same request as JSON.
func TestBinaryRequestBodyTooLarge413(t *testing.T) {
	_, srv := newTestService(t, Config{Workers: 2, Binary: true})
	body := bytes.Repeat([]byte{0xAB}, maxBody+1)
	resp, err := http.Post(srv.URL+RouteCoord, BinaryContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	e, derr := wire.DecodeError(buf.Bytes())
	if derr != nil {
		t.Fatalf("response is not a binary error frame: %v", derr)
	}
	if e.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("frame code = %d, want 413", e.Code)
	}
	if !strings.Contains(e.Message, "JSON") {
		t.Fatalf("message %q does not point the client at the JSON fallback", e.Message)
	}
}

// TestJSONRequestBodyTooLarge413: an oversized JSON body is refused
// with 413 (the body may be perfectly well-formed, just too big) rather
// than the 400 the old MaxBytesReader-to-bad-request mapping produced.
func TestJSONRequestBodyTooLarge413(t *testing.T) {
	_, srv := newTestService(t, Config{Workers: 2})
	pad := strings.Repeat("x", maxJSONBody)
	body := `{"platform":"` + pad + `","workload":"stream","budget_watts":208}`
	resp, got := post(t, srv, RouteCoord, body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d (%s), want 413", resp.StatusCode, got)
	}
	// A body exactly at the cap still parses (and fails validation on
	// its merits, not its size).
	okBody := `{"platform":"nope","workload":"stream","budget_watts":208}`
	resp, _ = post(t, srv, RouteCoord, okBody)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("in-cap bad platform: status = %d, want 400", resp.StatusCode)
	}
}

// TestRegressCoordBudgetBelowCapFloorRejected is the satellite
// regression for the silent-clamp bug: a GPU coordination budget below
// the card's settable cap floor used to be evaluated at a clamped cap
// the budget could not fund, returning a plausible 200 whose allocation
// exceeded the budget. The service must instead answer 400 carrying
// the card's typed rejection, and the floor itself must still be
// accepted.
func TestRegressCoordBudgetBelowCapFloorRejected(t *testing.T) {
	_, srv := newTestService(t, Config{Workers: 2})
	cases := []struct {
		platform, wl string
		budget       float64
	}{
		{"h100", "llmserve", 150},   // H100 floor is 200 W
		{"h200", "llmchat", 199.99}, // just under the floor
		{"titanxp", "gpustream", 90},
		{"titanv", "gpustream", 90}, // degenerate pair: TotMax < floor
	}
	for _, tc := range cases {
		// The exported exact path carries the typed cause.
		req := wire.CoordRequest{Platform: tc.platform, Workload: tc.wl,
			Budget: tc.budget, Strategy: "coord"}
		_, err := ComputeCoord(req)
		if !errors.Is(err, nvgov.ErrCapOutOfRange) {
			t.Fatalf("%s/%s b=%v: ComputeCoord error = %v, want nvgov.ErrCapOutOfRange",
				tc.platform, tc.wl, tc.budget, err)
		}
		var cre *nvgov.CapRangeError
		if !errors.As(err, &cre) {
			t.Fatalf("%s/%s: error %v does not carry *nvgov.CapRangeError", tc.platform, tc.wl, err)
		}
		p, perr := hw.PlatformByName(tc.platform)
		if perr != nil {
			t.Fatal(perr)
		}
		if cre.Cap != units.Power(tc.budget) || cre.Min != p.GPU.MinCap || cre.Max != p.GPU.MaxCap {
			t.Fatalf("%s/%s: CapRangeError = %+v, want cap %v in [%v, %v]",
				tc.platform, tc.wl, cre, tc.budget, p.GPU.MinCap, p.GPU.MaxCap)
		}

		// And the HTTP surface maps it to an actionable 400.
		body := fmt.Sprintf(`{"platform":%q,"workload":%q,"budget_watts":%v}`,
			tc.platform, tc.wl, tc.budget)
		resp, got := post(t, srv, RouteCoord, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s/%s b=%v: status = %d (%s), want 400 (the old clamp answered 200)",
				tc.platform, tc.wl, tc.budget, resp.StatusCode, got)
		}
		for _, want := range []string{"settable", "floor"} {
			if !strings.Contains(string(got), want) {
				t.Fatalf("%s/%s: 400 body %s does not mention %q", tc.platform, tc.wl, got, want)
			}
		}
	}

	// The floor itself is enforceable: h100 at exactly 200 W coordinates.
	resp, got := post(t, srv, RouteCoord,
		`{"platform":"h100","workload":"llmserve","budget_watts":200}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budget at the floor: status = %d (%s), want 200", resp.StatusCode, got)
	}
}

// TestOversizeBinaryResponse413: a computed response that does not fit
// a binary frame (a huge schedule round) renders as a 413 error frame
// telling the client to retry in JSON — never a truncated frame.
func TestOversizeBinaryResponse413(t *testing.T) {
	huge := ScheduleResponse{}
	id := strings.Repeat("j", 1<<10)
	for len(huge.Deferred) < wire.MaxFrame/len(id)+2 {
		huge.Deferred = append(huge.Deferred, id)
	}
	resp := okResponseBin(huge)
	if resp.code != http.StatusRequestEntityTooLarge {
		t.Fatalf("code = %d, want 413", resp.code)
	}
	if !resp.binary {
		t.Fatal("oversize response must still answer in the negotiated encoding")
	}
	e, err := wire.DecodeError(resp.body)
	if err != nil {
		t.Fatalf("413 body is not a binary error frame: %v", err)
	}
	if e.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("frame code = %d, want 413", e.Code)
	}
}
