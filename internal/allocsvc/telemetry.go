package allocsvc

import (
	"strconv"

	"repro/internal/telemetry"
)

// metrics holds the service's registry handles. The registry may be
// nil (uninstrumented service); every handle getter then returns a
// nil-safe no-op, per the telemetry package contract.
//
// These series are registered directly on the registry, NOT through
// wire.Instrument: the wire package's deterministic control tier must
// stay byte-reproducible across runs, while request counts and
// latencies are inherently load-dependent. Keeping them in separate
// families preserves the tier split the observability layer
// established.
type metrics struct {
	reg      *telemetry.Registry
	inflight *telemetry.Gauge
	// tableHit/tableMiss are cached handles: decision-table lookups run
	// on the zero-alloc fast path, so they must not pay the labelled
	// lookup cost per request.
	tableHit  *telemetry.Counter
	tableMiss *telemetry.Counter
}

func (m *metrics) init(reg *telemetry.Registry) {
	m.reg = reg
	m.inflight = reg.Gauge("allocsvc_inflight",
		"Requests currently executing in the allocation service worker pool.")
	m.tableHit = reg.Counter("allocsvc_table_lookups_total",
		"Decision-table lookups by result.", "result", "hit")
	m.tableMiss = reg.Counter("allocsvc_table_lookups_total",
		"Decision-table lookups by result.", "result", "miss")
}

// requests returns the counter for one (route, status) pair. Series
// are created lazily on first use; the registry deduplicates.
func (m *metrics) requests(route string, code int) *telemetry.Counter {
	return m.reg.Counter("allocsvc_requests_total",
		"Allocation service requests by route and HTTP status.",
		"route", route, "code", strconv.Itoa(code))
}

// latency returns the per-route request duration histogram.
func (m *metrics) latency(route string) *telemetry.Histogram {
	return m.reg.Histogram("allocsvc_request_seconds",
		"Allocation service request latency in seconds.",
		telemetry.DurationBuckets, "route", route)
}

// coalesceHits returns the per-route coalesced-request counter.
func (m *metrics) coalesceHits(route string) *telemetry.Counter {
	return m.reg.Counter("allocsvc_coalesced_total",
		"Requests served by joining an identical in-flight computation.",
		"route", route)
}
