package allocsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"

	"repro/internal/wire"
)

const treeBody = `{"budget_watts":900,"racks":[` +
	`{"id":"cpu","nodes":[` +
	`{"id":"cpu/0","platform":"ivybridge","workload":"stream","priority":2},` +
	`{"id":"cpu/1","platform":"haswell","workload":"dgemm","priority":1}]},` +
	`{"id":"gpu","cap_watts":450,"nodes":[` +
	`{"id":"gpu/0","platform":"titanxp","workload":"sgemm","priority":1},` +
	`{"id":"gpu/1","platform":"titanv","workload":"gpustream"}]}]}`

// TestTreeRoute exercises the JSON surface end to end: a heterogeneous
// two-rack tree must come back conserved (granted + surplus == budget),
// with every leaf accounted for as a grant or a shed entry.
func TestTreeRoute(t *testing.T) {
	_, srv := newTestService(t, Config{Workers: 2})
	resp, body := post(t, srv, RouteTree, treeBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", resp.StatusCode, body)
	}
	var out TreeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Budget != 900 {
		t.Errorf("budget = %v, want 900", out.Budget)
	}
	if got := out.Granted + out.Surplus; math.Abs(got-out.Budget) > 0.25 {
		t.Errorf("granted %v + surplus %v = %v, want ~%v", out.Granted, out.Surplus, got, out.Budget)
	}
	if len(out.Grants)+len(out.Shed) != 4 {
		t.Errorf("grants %d + shed %d, want 4 leaves", len(out.Grants), len(out.Shed))
	}
	if len(out.Racks) != 2 {
		t.Errorf("racks = %d, want 2", len(out.Racks))
	}
	var rackSum float64
	for _, rr := range out.Racks {
		rackSum += rr.Budget
	}
	if math.Abs(rackSum-out.Granted) > 1e-9 {
		t.Errorf("rack budgets sum to %v, granted %v", rackSum, out.Granted)
	}
	for _, g := range out.Grants {
		if g.Budget <= 0 {
			t.Errorf("grant %s: non-positive budget %v", g.Node, g.Budget)
		}
		if g.Status == "" {
			t.Errorf("grant %s: empty status", g.Node)
		}
	}

	// Byte-identical on repeat: the solve is deterministic and the
	// response render is canonical.
	_, again := post(t, srv, RouteTree, treeBody)
	if !bytes.Equal(body, again) {
		t.Errorf("repeated tree request bodies differ:\n%s\n%s", body, again)
	}
}

// TestTreeRouteErrors pins the validation surface: every malformed
// request is a 400 with a JSON error body, and non-POST methods 405.
func TestTreeRouteErrors(t *testing.T) {
	_, srv := newTestService(t, Config{Workers: 1})
	cases := []struct {
		name, body, frag string
	}{
		{"no_racks", `{"budget_watts":100,"racks":[]}`, "at least one rack"},
		{"bad_budget", `{"budget_watts":-5,"racks":[{"id":"r","nodes":[{"id":"r/0","platform":"ivybridge","workload":"stream"}]}]}`, "budget_watts"},
		{"unknown_platform", `{"budget_watts":100,"racks":[{"id":"r","nodes":[{"id":"r/0","platform":"epyc","workload":"stream"}]}]}`, "unknown platform"},
		{"kind_mismatch", `{"budget_watts":100,"racks":[{"id":"r","nodes":[{"id":"r/0","platform":"titanv","workload":"stream"}]}]}`, "workload"},
		{"dup_node", `{"budget_watts":100,"racks":[{"id":"r","nodes":[` +
			`{"id":"r/0","platform":"ivybridge","workload":"stream"},` +
			`{"id":"r/0","platform":"ivybridge","workload":"dgemm"}]}]}`, "invalid tree"},
		{"unknown_field", `{"budget_watts":100,"rax":[]}`, "unknown field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, srv, RouteTree, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, body)
			}
			if !strings.Contains(strings.ToLower(string(body)), strings.ToLower(tc.frag)) {
				t.Errorf("error body %q does not mention %q", body, tc.frag)
			}
		})
	}

	resp, err := http.Get(srv.URL + RouteTree)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}
}

// TestTreeBinaryAgreesWithJSON serves the same tree over both surfaces
// and checks the decoded binary response matches the JSON one field
// for field.
func TestTreeBinaryAgreesWithJSON(t *testing.T) {
	svc, srv := newTestService(t, Config{Workers: 2, Binary: true})
	_, jsonBody := post(t, srv, RouteTree, treeBody)
	var want TreeResponse
	if err := json.Unmarshal(jsonBody, &want); err != nil {
		t.Fatalf("decode JSON: %v", err)
	}

	var req TreeRequest
	if err := json.Unmarshal([]byte(treeBody), &req); err != nil {
		t.Fatal(err)
	}
	frame, err := wire.AppendTreeRequest(nil, &req)
	if err != nil {
		t.Fatal(err)
	}

	// Through the HTTP layer.
	resp, err := http.Post(srv.URL+RouteTree, BinaryContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary status = %d; body %q", resp.StatusCode, buf.Bytes())
	}
	var got TreeResponse
	if err := wire.DecodeTreeResponse(buf.Bytes(), &got); err != nil {
		t.Fatalf("decode binary: %v", err)
	}
	checkTreeEqual(t, got, want)

	// Straight through ServeBinary (the transport-free entry point).
	code, _, out := svc.ServeBinary(context.Background(), frame, nil)
	if code != http.StatusOK {
		t.Fatalf("ServeBinary code = %d", code)
	}
	var got2 TreeResponse
	if err := wire.DecodeTreeResponse(out, &got2); err != nil {
		t.Fatalf("decode ServeBinary frame: %v", err)
	}
	checkTreeEqual(t, got2, want)
}

func checkTreeEqual(t *testing.T, got, want TreeResponse) {
	t.Helper()
	if got.Budget != want.Budget || got.Granted != want.Granted ||
		got.Surplus != want.Surplus || got.TotalPerf != want.TotalPerf ||
		got.Oversubscription != want.Oversubscription {
		t.Errorf("header mismatch: got %+v want %+v", got, want)
	}
	if len(got.Grants) != len(want.Grants) || len(got.Racks) != len(want.Racks) || len(got.Shed) != len(want.Shed) {
		t.Fatalf("section lengths differ: got %d/%d/%d want %d/%d/%d",
			len(got.Grants), len(got.Racks), len(got.Shed),
			len(want.Grants), len(want.Racks), len(want.Shed))
	}
	for i := range got.Grants {
		if got.Grants[i] != want.Grants[i] {
			t.Errorf("grant %d: got %+v want %+v", i, got.Grants[i], want.Grants[i])
		}
	}
	for i := range got.Racks {
		if got.Racks[i] != want.Racks[i] {
			t.Errorf("rack %d: got %+v want %+v", i, got.Racks[i], want.Racks[i])
		}
	}
	for i := range got.Shed {
		if got.Shed[i] != want.Shed[i] {
			t.Errorf("shed %d: got %+v want %+v", i, got.Shed[i], want.Shed[i])
		}
	}
}

// TestTreeBinaryMalformed: a garbage frame on the tree route must be a
// clean 400 error frame, never a panic.
func TestTreeBinaryMalformed(t *testing.T) {
	svc, _ := newTestService(t, Config{Workers: 1, Binary: true})
	frame := []byte{'p', 'B', wire.Version, wire.TTreeRequest, 0xff, 0xff, 0xff, 0xff}
	code, _, out := svc.ServeBinary(context.Background(), frame, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("code = %d, want 400", code)
	}
	if e, err := wire.DecodeError(out); err != nil || e.Code != http.StatusBadRequest {
		t.Fatalf("error frame: %+v, %v", e, err)
	}
}
