package allocsvc

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/hw"
	"repro/internal/nvgov"
	"repro/internal/recoord"
	"repro/internal/units"
	"repro/internal/wire"
	"repro/internal/workload"
)

// workloadNames renders the catalog's workload names of one kind for
// actionable error messages, mirroring platformNames.
func workloadNames(kind hw.Kind) string {
	var names []string
	for _, w := range workload.AllWorkloads() {
		if w.Kind == kind {
			names = append(names, w.Name)
		}
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// handleRecoord serves POST /v1/recoord: one online re-coordination
// run on a phased GPU workload, compared against static COORD and the
// default governor on the same virtual-time trace. The route is
// JSON-only (the response carries a variable-length phase timeline,
// not a fixed hot-path shape), deliberately table-unaware (a run is a
// closed-loop simulation, not a per-budget lookup), and goes through
// the same worker pool, coalescing, and backpressure as coord/plan —
// a run costs hundreds of engine evaluations, so shedding matters
// more here, not less.
func (s *Service) handleRecoord(w http.ResponseWriter, r *http.Request) {
	start := s.now()
	if isBinary(r) {
		s.reject(w, RouteRecoord, &response{
			code: http.StatusUnsupportedMediaType,
			body: renderJSON(errorJSON{Error: "binary protocol not supported on " + RouteRecoord + "; send JSON"}),
		}, start)
		return
	}
	if r.Method != http.MethodPost {
		s.reject(w, RouteRecoord, methodNotAllowed(r), start)
		return
	}
	var req RecoordRequest
	if err := decode(w, r, &req); err != nil {
		s.reject(w, RouteRecoord, errorResponse(err), start)
		return
	}
	key := strings.Join([]string{
		RouteRecoord, req.Platform, req.Workload, req.PhaseSpec,
		budgetBits(req.Budget), strconv.Itoa(req.Rounds),
	}, "|")
	s.serve(w, r, RouteRecoord, key, s.timeout(req.TimeoutMS), func() (any, error) {
		return ComputeRecoord(req)
	})
}

// ComputeRecoord computes one /v1/recoord run in-process: the exact
// computation the service runs behind the route, exported so
// allocclient's degraded mode can serve re-coordination answers
// locally when every shard is unreachable. The controller is a pure
// function of the request, so a degraded answer is content-identical
// to a served one.
func ComputeRecoord(req RecoordRequest) (RecoordResponse, error) {
	if err := checkBudget(req.Budget); err != nil {
		return RecoordResponse{}, err
	}
	p, err := hw.PlatformByName(req.Platform)
	if err != nil {
		return RecoordResponse{}, badRequestf("unknown platform %q (supported: %s)",
			req.Platform, platformNames(hw.KindGPU, true))
	}
	if p.Kind != hw.KindGPU {
		return RecoordResponse{}, badRequestf(
			"platform %q is a %s platform; online re-coordination runs on GPU platforms (%s)",
			req.Platform, p.Kind, platformNames(hw.KindGPU, false))
	}
	var wl workload.Workload
	switch {
	case req.PhaseSpec != "" && req.Workload != "":
		return RecoordResponse{}, badRequestf("workload and phase_spec are mutually exclusive")
	case req.PhaseSpec != "":
		if wl, err = workload.ParsePhaseSpec(req.PhaseSpec); err != nil {
			return RecoordResponse{}, badRequestf("%v", err)
		}
	case req.Workload != "":
		if wl, err = workload.ByName(req.Workload); err != nil {
			return RecoordResponse{}, badRequestf("unknown workload %q (supported: %s)",
				req.Workload, workloadNames(hw.KindGPU))
		}
		if wl.Kind != hw.KindGPU {
			return RecoordResponse{}, badRequestf(
				"workload %q is a %s benchmark; online re-coordination runs GPU workloads (%s)",
				req.Workload, wl.Kind, workloadNames(hw.KindGPU))
		}
	default:
		return RecoordResponse{}, badRequestf("one of workload or phase_spec is required")
	}
	budget := units.Power(req.Budget)
	if budget < p.GPU.MinCap {
		capErr := nvgov.CheckCap(p.GPU, budget)
		return RecoordResponse{}, &badRequestError{
			msg: fmt.Sprintf("budget %v is below the card's settable cap floor: %v",
				budget, capErr),
			cause: capErr,
		}
	}

	res, err := recoord.Run(recoord.Config{
		Platform: p, Workload: wl, Budget: budget, Rounds: req.Rounds,
	})
	if err != nil {
		return RecoordResponse{}, badRequestf("%v", err)
	}

	resp := RecoordResponse{
		Platform: res.Platform, Workload: res.Workload,
		Budget: res.Budget.Watts(), PerfUnit: res.PerfUnit,
		OnlinePerf: res.OnlinePerf, StaticPerf: res.StaticPerf,
		GovernorPerf: res.GovernorPerf, Gain: res.Gain(),
		Recoordinations: res.Recoordinations, Switches: res.Switches,
		StaticAlloc: AllocJSON{
			ProcWatts: res.StaticSetting.Proc.Watts(),
			MemWatts:  res.StaticSetting.Mem.Watts(),
		},
	}
	for _, v := range res.Visits {
		resp.Visits = append(resp.Visits, wire.RecoordVisitJSON{
			Phase: v.Phase, Ticks: v.Ticks, LagTicks: v.LagTicks,
			Recoordinated: v.Recoordinated,
			Alloc: AllocJSON{
				ProcWatts: v.Setting.Proc.Watts(),
				MemWatts:  v.Setting.Mem.Watts(),
			},
			OnlinePerf: v.OnlinePerf, StaticPerf: v.StaticPerf,
			GovernorPerf: v.GovernorPerf,
		})
	}
	return resp, nil
}
