package allocsvc

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestLoadSmoke is the concurrency smoke the Makefile check gate runs
// under the race detector: many clients hammering a small worker pool
// with a mix of identical and distinct requests across all three
// routes. It asserts the service stays consistent under load — every
// request gets a well-formed verdict (200 or 429, nothing else),
// responses for the same request are byte-identical no matter which
// client got them, and the counters balance.
func TestLoadSmoke(t *testing.T) {
	svc := New(Config{Workers: 4, QueueDepth: 256})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	reqs := []struct{ route, body string }{
		{RouteCoord, `{"platform":"ivybridge","workload":"stream","budget_watts":208}`},
		{RouteCoord, `{"platform":"ivybridge","workload":"dgemm","budget_watts":170}`},
		{RouteCoord, `{"platform":"haswell","workload":"stream","budget_watts":190}`},
		{RouteCoord, `{"platform":"titanxp","workload":"gpustream","budget_watts":180}`},
		{RoutePlan, `{"platform":"ivybridge","workload":"ft","budget_watts":180}`},
		{RouteSchedule, `{"budget_watts":500,` +
			`"nodes":[{"id":"n1","platform":"ivybridge"},{"id":"n2","platform":"ivybridge"}],` +
			`"jobs":[{"id":"j1","workload":"stream"},{"id":"j2","workload":"dgemm"}]}`},
	}

	const clients = 8
	const perClient = 30
	var mu sync.Mutex
	seen := map[string][]byte{} // body -> first response bytes
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				r := reqs[(c+i)%len(reqs)]
				resp, err := http.Post(srv.URL+r.route, "application/json",
					strings.NewReader(r.body))
				if err != nil {
					t.Errorf("POST %s: %v", r.route, err)
					return
				}
				got, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					mu.Lock()
					if prev, ok := seen[r.body]; ok {
						if !bytes.Equal(prev, got) {
							t.Errorf("divergent responses for %s:\n%s\n%s", r.body, prev, got)
						}
					} else {
						seen[r.body] = got
					}
					mu.Unlock()
				case http.StatusTooManyRequests:
					// Legal under saturation; nothing to check.
				default:
					t.Errorf("POST %s: status %d, body %s", r.route, resp.StatusCode, got)
				}
			}
		}(c)
	}
	wg.Wait()

	st := svc.Stats()
	if want := uint64(clients * perClient); st.Requests != want {
		t.Errorf("Requests = %d, want %d", st.Requests, want)
	}
	if st.Failures != 0 || st.BadInput != 0 || st.Timeouts != 0 {
		t.Errorf("unexpected outcomes under load: %+v", st)
	}
	if st.OK+st.Rejected != st.Requests {
		t.Errorf("counters do not balance: %+v", st)
	}
	t.Logf("load smoke: %+v (coalesce rate %.1f%%)", st, 100*st.CoalesceRate())
}
