package allocsvc

// Tables is the precomputed decision-table hook (implemented by
// internal/decisiontable). A table lookup must be cheap enough to run
// before admission control: covered requests bypass the worker pool
// and the coalescing layer entirely, because the O(1) interpolating
// lookup costs less than queueing for a slot would.
//
// Implementations fill out in place (reusing out's existing
// allocations where possible — the service pools the out structs) and
// must be safe for concurrent use.
type Tables interface {
	// Coord fills out with the table-served decision for req and
	// reports whether the table covered it. A false return means the
	// exact path must serve the request: unknown pair, non-default
	// strategy, invalid budget, or a pair whose table could not be
	// built (degraded profiles).
	Coord(req *CoordRequest, out *CoordResponse) bool
	// Plan is the analogous lookup for /v1/plan.
	Plan(req *PlanRequest, out *PlanResponse) bool
}

// tableCoord consults the configured tables for a coord request,
// counting the outcome. It returns false when tables are not
// configured or do not cover the request.
func (s *Service) tableCoord(req *CoordRequest, out *CoordResponse) bool {
	if s.cfg.Tables == nil {
		return false
	}
	if s.cfg.Tables.Coord(req, out) {
		s.stats.tableHits.Add(1)
		s.m.tableHit.Inc()
		return true
	}
	s.stats.tableMisses.Add(1)
	s.m.tableMiss.Inc()
	return false
}

// tablePlan is tableCoord's /v1/plan counterpart.
func (s *Service) tablePlan(req *PlanRequest, out *PlanResponse) bool {
	if s.cfg.Tables == nil {
		return false
	}
	if s.cfg.Tables.Plan(req, out) {
		s.stats.tableHits.Add(1)
		s.m.tableHit.Inc()
		return true
	}
	s.stats.tableMisses.Add(1)
	s.m.tableMiss.Inc()
	return false
}
