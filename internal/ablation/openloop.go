package ablation

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// OpenLoop contrasts RAPL's closed-loop capping with the open-loop
// frequency pinning that pre-RAPL power-aware computing used (the paper's
// related work, [15]/[32]): pick one P-state whose *average-activity*
// power fits the target and pin it for the whole run.
//
// The study shows why the paper's problem needs closed-loop hardware: a
// multi-phase workload's activity swings between phases, so the pinned
// frequency either violates the bound during compute-heavy phases or
// wastes headroom during memory-heavy ones. RAPL re-actuates per phase
// and does both jobs at once.
func OpenLoop() (experiments.Output, error) {
	out := experiments.Output{ID: "open-loop", Title: "Open-loop frequency pinning vs closed-loop RAPL"}
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		return out, err
	}

	tb := report.NewTable("Multi-phase workloads under a package power target (IvyBridge)",
		"workload", "target (W)", "policy", "perf", "max phase power (W)", "violates target")
	violations, closedViolations := 0, 0
	var openWaste []float64
	for _, name := range []string{"ft", "bt", "mg", "sp"} {
		w, err := workload.ByName(name)
		if err != nil {
			return out, err
		}
		for _, target := range []units.Power{100, 120, 140} {
			closed, err := sim.RunCPU(p, &w, target, 0)
			if err != nil {
				return out, err
			}
			closedMax := maxPhasePower(closed)
			if closedMax > target.Watts()+1 {
				closedViolations++
			}
			tb.AddRow(name, report.FormatFloat(target.Watts()), "closed-loop",
				report.FormatFloat(closed.Perf), report.FormatFloat(closedMax),
				fmt.Sprintf("%v", closedMax > target.Watts()+1))

			perf, openMax := openLoopRun(p, &w, target)
			if openMax > target.Watts()+1 {
				violations++
			}
			openWaste = append(openWaste, target.Watts()-openMax)
			tb.AddRow(name, report.FormatFloat(target.Watts()), "open-loop",
				report.FormatFloat(perf), report.FormatFloat(openMax),
				fmt.Sprintf("%v", openMax > target.Watts()+1))
		}
	}
	out.Tables = append(out.Tables, tb)

	out.Findings = append(out.Findings, experiments.Finding{
		Claim:    "closed-loop RAPL respects the bound in every phase",
		Measured: fmt.Sprintf("%d closed-loop violations across 12 cases", closedViolations),
		Pass:     closedViolations == 0,
	})
	out.Findings = append(out.Findings, experiments.Finding{
		Claim:    "open-loop frequency pinning violates the bound on phase-varying workloads",
		Measured: fmt.Sprintf("%d open-loop violations across 12 cases", violations),
		Pass:     violations > 0,
	})
	return out, nil
}

// maxPhasePower returns the highest per-phase package power of a run.
func maxPhasePower(res sim.Result) float64 {
	m := 0.0
	for _, ph := range res.Phases {
		if v := ph.ProcPower.Watts(); v > m {
			m = v
		}
	}
	return m
}

// openLoopRun pins the highest P-state whose power at the workload's
// average uncapped activity fits the target, then evaluates every phase
// at that fixed frequency with memory uncapped. It returns the aggregate
// performance and the highest per-phase package power actually drawn.
func openLoopRun(p hw.Platform, w *workload.Workload, target units.Power) (perf float64, maxPower float64) {
	// Average activity from an uncapped run.
	free, err := sim.RunCPU(p, w, 0, 0)
	if err != nil {
		return 0, 0
	}
	avgAct := 0.0
	for _, ph := range free.Phases {
		avgAct += ph.Weight * ph.Activity
	}
	// Highest P-state fitting the target at the average activity.
	pstates := p.CPU.PStates()
	pinned := pstates[0]
	for i := len(pstates) - 1; i >= 0; i-- {
		if p.CPU.Power(pstates[i], 1, avgAct) <= target {
			pinned = pstates[i]
			break
		}
	}
	// Evaluate each phase at the pinned frequency.
	totalTime := 0.0
	for i := range w.Phases {
		ph := &w.Phases[i]
		computeCap := units.Rate(p.CPU.PeakComputeRate(pinned, 1).OpsPerSecond() * ph.ComputeEff)
		fRatio := pinned.Hz() / p.CPU.FNom.Hz()
		issue := 0.7 + 0.3*fRatio
		patternBW := units.Bandwidth(p.DRAM.PeakBandwidth().BytesPerSecond() * ph.BandwidthEff * issue)
		op := perfmodel.Solve(ph, computeCap, patternBW)
		if op.Rate <= 0 {
			return 0, 0
		}
		totalTime += ph.Weight / op.Rate.OpsPerSecond()
		act := ph.Activity(op.StallFrac)
		if pw := p.CPU.Power(pinned, 1, act).Watts(); pw > maxPower {
			maxPower = pw
		}
	}
	if totalTime > 0 {
		perf = w.PerfPerUnitRate / totalTime
	}
	return perf, maxPower
}
