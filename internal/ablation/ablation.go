// Package ablation isolates the design choices DESIGN.md calls out and
// measures what each one buys: the duty-gated memory-issue model (what
// makes scenario IV emerge), the overlap p-norm (versus a pure roofline),
// the 2% demand margin in profiling, and COORD's gamma balance parameter
// for in-between GPU applications. Each study produces the same Output
// shape as the paper experiments, so cmd/ablation renders them uniformly.
package ablation

import (
	"fmt"

	"repro/internal/coord"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// All returns every ablation study.
func All() []experiments.Runner {
	return []experiments.Runner{
		{ID: "duty-gating", Title: "Duty-gated memory issue: what creates scenario IV", Run: DutyGating},
		{ID: "overlap", Title: "Overlap p-norm vs pure roofline", Run: Overlap},
		{ID: "margin", Title: "Profiling demand margin: capping at exact demand loses a P-state", Run: Margin},
		{ID: "gamma", Title: "COORD gamma sweep for in-between GPU applications", Run: Gamma},
		{ID: "open-loop", Title: "Open-loop frequency pinning vs closed-loop RAPL", Run: OpenLoop},
		{ID: "problem-size", Title: "Optimal allocation vs problem size", Run: ProblemSize},
	}
}

// ByID returns the ablation runner with the given ID.
func ByID(id string) (experiments.Runner, error) {
	for _, r := range All() {
		if r.ID == id {
			return r, nil
		}
	}
	return experiments.Runner{}, fmt.Errorf("ablation: unknown id %q", id)
}

// DutyGating compares the full model against one with duty-gating
// disabled on the paper's scenario-IV anchor (SRA at 240 W with the CPU
// deeply throttled): without the gate, DRAM keeps drawing near its
// allocation even though the CPU is duty-cycled — scenario IV's defining
// behaviour vanishes.
func DutyGating() (experiments.Output, error) {
	out := experiments.Output{ID: "duty-gating", Title: "Duty-gated memory issue"}
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		return out, err
	}
	w, err := workload.ByName("sra")
	if err != nil {
		return out, err
	}

	// The workload's unconstrained DRAM draw is the reference: in
	// scenario IV the question is how far below its own demand the
	// throttled run sits, not how far below the (over-sized) allocation.
	free, err := sim.RunCPU(p, &w, 0, 0)
	if err != nil {
		return out, err
	}
	demand := free.MemPower.Watts()

	tb := report.NewTable("SRA at 240 W, scenario-IV allocations (CPU throttled)",
		"P_cpu (W)", "P_mem (W)", "model", "GUP/s", "DRAM actual (W)", "fraction of DRAM demand")
	var gatedRatios, ungatedRatios []float64
	for _, procCap := range []units.Power{52, 56, 60, 64} {
		memCap := 240 - procCap
		full, err := sim.RunCPU(p, &w, procCap, memCap)
		if err != nil {
			return out, err
		}
		ungated, err := sim.RunCPUOpts(p, &w, procCap, memCap, sim.Options{DisableDutyGating: true})
		if err != nil {
			return out, err
		}
		fullRatio := full.MemPower.Watts() / demand
		ungatedRatio := ungated.MemPower.Watts() / demand
		gatedRatios = append(gatedRatios, fullRatio)
		ungatedRatios = append(ungatedRatios, ungatedRatio)
		tb.AddRowf(procCap.Watts(), memCap.Watts(), "full", full.Perf, full.MemPower.Watts(), fullRatio)
		tb.AddRowf(procCap.Watts(), memCap.Watts(), "no-gating", ungated.Perf, ungated.MemPower.Watts(), ungatedRatio)
	}
	out.Tables = append(out.Tables, tb)

	gated := mean(gatedRatios)
	ungatedMean := mean(ungatedRatios)
	out.Findings = append(out.Findings, experiments.Finding{
		Claim:    "duty gating is what makes throttled CPUs leave DRAM budget unused (scenario IV)",
		Measured: fmt.Sprintf("mean DRAM draw as fraction of demand: full model %.2f, gating disabled %.2f", gated, ungatedMean),
		Pass:     gated < 0.75 && ungatedMean > 0.95,
	})
	return out, nil
}

// Overlap compares the calibrated per-workload overlap exponents against
// a pure roofline (perfect overlap, T = max(Tc, Tm)) and a fully
// serialized model (p = 1), measuring how much the exponent shapes
// uncapped performance and the sweep optimum.
func Overlap() (experiments.Output, error) {
	out := experiments.Output{ID: "overlap", Title: "Overlap p-norm vs pure roofline"}
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		return out, err
	}
	tb := report.NewTable("Uncapped performance under different overlap models (IvyBridge)",
		"workload", "calibrated", "roofline (p=64)", "serial (p=1)", "roofline/calibrated", "serial/calibrated")
	var rooflineInflation []float64
	for _, name := range []string{"sra", "stream", "dgemm", "cg", "mg", "lu"} {
		w, err := workload.ByName(name)
		if err != nil {
			return out, err
		}
		full, err := sim.RunCPU(p, &w, 0, 0)
		if err != nil {
			return out, err
		}
		roof, err := sim.RunCPUOpts(p, &w, 0, 0, sim.Options{ForceOverlap: 64})
		if err != nil {
			return out, err
		}
		serial, err := sim.RunCPUOpts(p, &w, 0, 0, sim.Options{ForceOverlap: 1})
		if err != nil {
			return out, err
		}
		tb.AddRowf(name, full.Perf, roof.Perf, serial.Perf,
			roof.Perf/full.Perf, serial.Perf/full.Perf)
		rooflineInflation = append(rooflineInflation, roof.Perf/full.Perf)
	}
	out.Tables = append(out.Tables, tb)
	out.Findings = append(out.Findings, experiments.Finding{
		Claim:    "a pure roofline overestimates performance for latency-bound codes; the exponent matters",
		Measured: fmt.Sprintf("roofline inflates uncapped perf by up to %.0f%%", 100*(maxOf(rooflineInflation)-1)),
		Pass:     maxOf(rooflineInflation) > 1.05,
	})
	out.Findings = append(out.Findings, experiments.Finding{
		Claim:    "roofline and serial bracket the calibrated model",
		Measured: "roofline >= calibrated >= serial for every workload",
		Pass:     bracketHolds(tb),
	})
	return out, nil
}

func bracketHolds(tb *report.Table) bool {
	// Columns: name, full, roof, serial, ...
	for _, row := range tb.Rows {
		if len(row) < 4 {
			return false
		}
		full, roof, serial := parseF(row[1]), parseF(row[2]), parseF(row[3])
		if !(roof >= full-1e-9 && full >= serial-1e-9) {
			return false
		}
	}
	return true
}

func parseF(s string) float64 {
	var v float64
	fmt.Sscanf(s, "%f", &v)
	return v
}

// Margin measures what the 2% profiling demand margin buys: profiles
// taken with margin 1.0 pin the caps at exactly the measured demand, and
// the surplus-regime allocation can lose performance to actuator
// hysteresis.
func Margin() (experiments.Output, error) {
	out := experiments.Output{ID: "margin", Title: "Profiling demand margin"}
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		return out, err
	}
	tb := report.NewTable("Surplus-regime COORD performance vs profiling margin (IvyBridge)",
		"workload", "margin 1.00", "margin 1.02", "exact/margined")
	worst := 1.0
	for _, name := range []string{"dgemm", "stream", "mg", "bt"} {
		w, err := workload.ByName(name)
		if err != nil {
			return out, err
		}
		exact, err := profile.ProfileCPUWithMargin(p, w, 1.0)
		if err != nil {
			return out, err
		}
		margined, err := profile.ProfileCPUWithMargin(p, w, 1.02)
		if err != nil {
			return out, err
		}
		budget := margined.Critical.CPUMax + margined.Critical.MemMax + 20
		run := func(prof profile.CPUProfile) (float64, error) {
			d := coord.CPU(prof, budget)
			res, err := sim.RunCPU(p, &w, d.Alloc.Proc, d.Alloc.Mem)
			if err != nil {
				return 0, err
			}
			return res.Perf, nil
		}
		pe, err := run(exact)
		if err != nil {
			return out, err
		}
		pm, err := run(margined)
		if err != nil {
			return out, err
		}
		ratio := pe / pm
		worst = minOf2(worst, ratio)
		tb.AddRowf(name, pe, pm, ratio)
	}
	out.Tables = append(out.Tables, tb)
	out.Findings = append(out.Findings, experiments.Finding{
		Claim:    "budgeting slightly above the measured demand is required for robust coordination (paper Section 6.2)",
		Measured: fmt.Sprintf("worst exact-demand/margined performance ratio %.3f", worst),
		Pass:     worst <= 1.0+1e-9, // exact demand is never better, and can be worse
	})
	return out, nil
}

// Gamma sweeps COORD's balance parameter for the in-between case on
// Cloverleaf under tight caps, verifying the paper's empirical 0.5 sits
// near the best setting.
func Gamma() (experiments.Output, error) {
	out := experiments.Output{ID: "gamma", Title: "COORD gamma sweep (Cloverleaf, Titan XP)"}
	p, err := hw.PlatformByName("titanxp")
	if err != nil {
		return out, err
	}
	w, err := workload.ByName("cloverleaf")
	if err != nil {
		return out, err
	}
	prof, err := profile.ProfileGPU(p, w)
	if err != nil {
		return out, err
	}
	// Caps below TotRef exercise the balanced branch.
	caps := []units.Power{prof.TotRef - 30, prof.TotRef - 20, prof.TotRef - 10}
	gammas := []float64{0.1, 0.3, 0.5, 0.7, 0.9}

	tb := report.NewTable("Cloverleaf performance by gamma (caps below P_tot_ref)",
		append([]string{"cap (W)"}, gammaHeaders(gammas)...)...)
	perfAt := map[float64]float64{} // gamma -> summed perf
	for _, cap := range caps {
		if cap < p.GPU.MinCap {
			continue
		}
		row := []string{report.FormatFloat(cap.Watts())}
		for _, g := range gammas {
			d := coord.GPU(prof, cap, g)
			res, err := sim.RunGPUMemPower(p, &w, cap, d.Alloc.Mem)
			if err != nil {
				return out, err
			}
			perfAt[g] += res.Perf
			row = append(row, report.FormatFloat(res.Perf))
		}
		tb.AddRow(row...)
	}
	out.Tables = append(out.Tables, tb)

	bestGamma, bestPerf := 0.0, 0.0
	for g, perf := range perfAt {
		if perf > bestPerf {
			bestGamma, bestPerf = g, perf
		}
	}
	defaultPerf := perfAt[coord.DefaultGamma]
	out.Findings = append(out.Findings, experiments.Finding{
		Claim:    "the paper's empirical gamma = 0.5 is near-optimal for the in-between case",
		Measured: fmt.Sprintf("best gamma %.1f; gamma 0.5 at %.1f%% of the best", bestGamma, 100*defaultPerf/bestPerf),
		Pass:     defaultPerf >= 0.97*bestPerf,
	})
	return out, nil
}

func gammaHeaders(gs []float64) []string {
	var hs []string
	for _, g := range gs {
		hs = append(hs, fmt.Sprintf("gamma %.1f", g))
	}
	return hs
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

func maxOf(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func minOf2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
