package ablation

import (
	"testing"
)

func TestAllStudiesRegistered(t *testing.T) {
	studies := All()
	if len(studies) != 6 {
		t.Fatalf("study count = %d, want 6", len(studies))
	}
	want := []string{"duty-gating", "overlap", "margin", "gamma", "open-loop", "problem-size"}
	for i, s := range studies {
		if s.ID != want[i] {
			t.Errorf("study %d = %s, want %s", i, s.ID, want[i])
		}
	}
	if _, err := ByID("duty-gating"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

// TestEveryAblationHolds runs each study and requires its findings to
// pass — the design choices must demonstrably matter.
func TestEveryAblationHolds(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.ID, func(t *testing.T) {
			out, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(out.Tables) == 0 {
				t.Error("no tables produced")
			}
			for _, f := range out.Findings {
				if !f.Pass {
					t.Errorf("claim failed: %s", f)
				}
			}
		})
	}
}

func TestBracketHelpers(t *testing.T) {
	if parseF("3.25") != 3.25 {
		t.Error("parseF")
	}
	if mean(nil) != 0 {
		t.Error("mean of empty")
	}
	if mean([]float64{1, 3}) != 2 {
		t.Error("mean")
	}
	if maxOf([]float64{1, 5, 2}) != 5 {
		t.Error("maxOf")
	}
	if minOf2(2, 1) != 1 || minOf2(1, 2) != 1 {
		t.Error("minOf2")
	}
}
