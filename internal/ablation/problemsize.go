package ablation

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

// ProblemSize studies how the optimal cross-component allocation shifts
// with problem size: scaling a workload's DRAM traffic (the first-order
// effect of outgrowing the cache) moves its arithmetic intensity, and the
// sweep optimum must follow — compute-heavy splits for cache-resident
// sizes, memory-heavy splits for large ones. This extends the paper's
// application-awareness finding (different *programs* need different
// splits) to different *sizes of the same program*.
func ProblemSize() (experiments.Output, error) {
	out := experiments.Output{ID: "problem-size", Title: "Optimal allocation vs problem size (DGEMM traffic scaling)"}
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		return out, err
	}
	base, err := workload.ByName("dgemm")
	if err != nil {
		return out, err
	}

	const budget = units.Power(208)
	tb := report.NewTable("DGEMM at 208 W with scaled DRAM traffic",
		"traffic factor", "ops/byte", "best split (cpu/mem)", "best perf", "cpu share")
	var shares []float64
	for _, factor := range []float64{0.5, 1, 2, 4, 8, 16} {
		w, err := workload.Scaled(base, factor)
		if err != nil {
			return out, err
		}
		pb := core.NewProblem(p, w, budget)
		best, err := pb.PerfMax()
		if err != nil {
			return out, err
		}
		share := best.Alloc.Proc.Watts() / best.Alloc.Total().Watts()
		shares = append(shares, share)
		tb.AddRow(
			fmt.Sprintf("%.1fx", factor),
			report.FormatFloat(w.ComputeIntensity()),
			fmt.Sprintf("%.0f/%.0f W", best.Alloc.Proc.Watts(), best.Alloc.Mem.Watts()),
			report.FormatFloat(best.Result.Perf),
			report.FormatFloat(share),
		)
	}
	out.Tables = append(out.Tables, tb)

	// The CPU share must fall (weakly) as traffic grows, and the spread
	// between the extremes must be substantial.
	monotone := true
	for i := 1; i < len(shares); i++ {
		if shares[i] > shares[i-1]+0.02 {
			monotone = false
		}
	}
	out.Findings = append(out.Findings, experiments.Finding{
		Claim:    "the optimal CPU power share falls as the problem outgrows the cache",
		Measured: fmt.Sprintf("CPU share from %.2f (cache-resident) to %.2f (16x traffic)", shares[0], shares[len(shares)-1]),
		Pass:     monotone && shares[0] > shares[len(shares)-1]+0.1,
	})
	return out, nil
}
