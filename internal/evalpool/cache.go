package evalpool

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// key addresses one memoized simulator call. The fingerprint pins the
// (platform, workload) content, the op pins the simulator entry point,
// and a/b/c carry the op's numeric knobs in canonical units — so two
// different call kinds with coincidentally equal numbers (a 140 W board
// cap with a 40 W memory budget versus a 140 W cap with a 40 Hz clock)
// can never alias. Keys are plain comparable structs used directly as
// map keys: equal keys are identical calls by construction, and there
// is no hash-collision failure mode beyond the content fingerprint.
type key struct {
	fp      uint64
	op      Op
	a, b, c float64
}

// key canonicalizes the request's knobs for its op.
func (r Request) key(fp uint64) key {
	k := key{fp: fp, op: r.Op}
	switch r.Op {
	case OpCPU:
		k.a, k.b = r.Proc.Watts(), r.Mem.Watts()
	case OpGPUClock:
		k.a, k.b = r.Proc.Watts(), r.Clock.Hz()
	case OpGPUMemPower:
		k.a, k.b = r.Proc.Watts(), r.Mem.Watts()
	case OpGPUOffsets:
		k.a, k.b, k.c = r.Proc.Watts(), r.SMOffset.Hz(), r.MemOffset.Hz()
	}
	return k
}

// shardCount is a power of two so shard selection is a mask.
const shardCount = 16

// fnvPrime is the FNV-1a 64-bit multiplier, reused to mix the knob bits
// into the shard index (the fingerprint alone is constant across a
// sweep and would pile every point into one shard).
const fnvPrime = 1099511628211

func (k key) shard() int {
	h := k.fp
	h = (h ^ uint64(k.op)) * fnvPrime
	h = (h ^ math.Float64bits(k.a)) * fnvPrime
	h = (h ^ math.Float64bits(k.b)) * fnvPrime
	h = (h ^ math.Float64bits(k.c)) * fnvPrime
	return int(h & (shardCount - 1))
}

// cache is the sharded memo store. Each shard has its own lock, so
// workers hammering different points rarely contend; the size bound is
// enforced per shard with arbitrary-victim eviction (which entry goes
// is irrelevant for correctness — only future hit rates differ).
type cache struct {
	perShard int
	shards   [shardCount]shard

	hits, misses, evictions atomic.Uint64
}

type shard struct {
	mu sync.Mutex
	m  map[key]sim.Result
}

func newCache(total int) *cache {
	per := total / shardCount
	if per < 1 {
		per = 1
	}
	c := &cache{perShard: per}
	for i := range c.shards {
		c.shards[i].m = make(map[key]sim.Result)
	}
	return c
}

func (c *cache) get(k key) (sim.Result, bool) {
	s := &c.shards[k.shard()]
	s.mu.Lock()
	res, ok := s.m[k]
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return sim.Result{}, false
	}
	c.hits.Add(1)
	return cloneResult(res), true
}

func (c *cache) put(k key, res sim.Result) {
	// Store a private copy so later mutation of the caller's result (or
	// of a result handed out on a hit) can never corrupt the cache.
	res = cloneResult(res)
	s := &c.shards[k.shard()]
	s.mu.Lock()
	if _, exists := s.m[k]; !exists && len(s.m) >= c.perShard {
		for victim := range s.m {
			delete(s.m, victim)
			c.evictions.Add(1)
			break
		}
	}
	s.m[k] = res
	s.mu.Unlock()
}

func (c *cache) len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}

func (c *cache) capacity() int { return c.perShard * shardCount }

// cloneResult deep-copies a result; phase entries are plain values, so
// copying the slice copies everything.
func cloneResult(r sim.Result) sim.Result {
	if r.Phases != nil {
		r.Phases = append([]sim.PhaseResult(nil), r.Phases...)
	}
	return r
}
