package evalpool

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// key addresses one memoized simulator call. The fingerprint pins the
// (platform, workload) content, the op pins the simulator entry point,
// and a/b/c carry the op's numeric knobs in canonical units — so two
// different call kinds with coincidentally equal numbers (a 140 W board
// cap with a 40 W memory budget versus a 140 W cap with a 40 Hz clock)
// can never alias. Keys are plain comparable structs used directly as
// map keys: equal keys are identical calls by construction, and there
// is no hash-collision failure mode beyond the content fingerprint.
type key struct {
	fp      uint64
	op      Op
	a, b, c float64
}

// key canonicalizes the request's knobs for its op.
func (r Request) key(fp uint64) key {
	k := key{fp: fp, op: r.Op}
	switch r.Op {
	case OpCPU:
		k.a, k.b = r.Proc.Watts(), r.Mem.Watts()
	case OpGPUClock:
		k.a, k.b = r.Proc.Watts(), r.Clock.Hz()
	case OpGPUMemPower:
		k.a, k.b = r.Proc.Watts(), r.Mem.Watts()
	case OpGPUOffsets:
		k.a, k.b, k.c = r.Proc.Watts(), r.SMOffset.Hz(), r.MemOffset.Hz()
	}
	return k
}

// shardCount is the maximum shard fan-out, a power of two so shard
// selection is a mask.
const shardCount = 16

// fnvPrime is the FNV-1a 64-bit multiplier, reused to mix the knob bits
// into the shard index (the fingerprint alone is constant across a
// sweep and would pile every point into one shard).
const fnvPrime = 1099511628211

// hash mixes every key field into a well-distributed 64-bit value the
// cache masks down to its shard count.
func (k key) hash() uint64 {
	h := k.fp
	h = (h ^ uint64(k.op)) * fnvPrime
	h = (h ^ math.Float64bits(k.a)) * fnvPrime
	h = (h ^ math.Float64bits(k.b)) * fnvPrime
	h = (h ^ math.Float64bits(k.c)) * fnvPrime
	return h
}

// cache is the sharded memo store. Each shard has its own lock, so
// workers hammering different points rarely contend; the size bound is
// enforced per shard with arbitrary-victim eviction (which entry goes
// is irrelevant for correctness — only future hit rates differ).
//
// Bounds smaller than shardCount use a reduced power-of-two fan-out so
// the enforced capacity (perShard * nShards) never exceeds the
// requested total: the old fixed fan-out rounded perShard up to 1 and
// silently admitted up to 16 entries when fewer were asked for.
type cache struct {
	perShard int
	nShards  int
	mask     uint64
	shards   [shardCount]shard

	hits, misses, evictions atomic.Uint64
}

type shard struct {
	mu sync.Mutex
	m  map[key]sim.Result
}

func newCache(total int) *cache {
	if total < 1 {
		total = 1
	}
	n := 1
	for n*2 <= shardCount && n*2 <= total {
		n *= 2
	}
	c := &cache{perShard: total / n, nShards: n, mask: uint64(n - 1)}
	for i := 0; i < n; i++ {
		c.shards[i].m = make(map[key]sim.Result)
	}
	return c
}

func (c *cache) shard(k key) *shard {
	return &c.shards[int(k.hash()&c.mask)]
}

func (c *cache) get(k key) (sim.Result, bool) {
	s := c.shard(k)
	s.mu.Lock()
	res, ok := s.m[k]
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return sim.Result{}, false
	}
	c.hits.Add(1)
	return cloneResult(res), true
}

func (c *cache) put(k key, res sim.Result) {
	// Store a private copy so later mutation of the caller's result (or
	// of a result handed out on a hit) can never corrupt the cache.
	res = cloneResult(res)
	s := c.shard(k)
	s.mu.Lock()
	if _, exists := s.m[k]; !exists && len(s.m) >= c.perShard {
		for victim := range s.m {
			delete(s.m, victim)
			c.evictions.Add(1)
			break
		}
	}
	s.m[k] = res
	s.mu.Unlock()
}

func (c *cache) len() int {
	n := 0
	for i := 0; i < c.nShards; i++ {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}

// capacity is the enforced entry bound; by construction it never
// exceeds the total newCache was asked for.
func (c *cache) capacity() int { return c.perShard * c.nShards }

// cloneResult deep-copies a result; phase entries are plain values, so
// copying the slice copies everything.
func cloneResult(r sim.Result) sim.Result {
	if r.Phases != nil {
		r.Phases = append([]sim.PhaseResult(nil), r.Phases...)
	}
	return r
}
