package evalpool

import "repro/internal/telemetry"

// RegisterDefaultMetrics exposes the shared engine's counters on r as
// collector-backed series: values are read from Default().Stats() at
// snapshot time, so the engine keeps its own lock-free atomics and the
// hot evaluation path is untouched. A nil registry is a no-op.
//
// These series are NOT deterministic across worker counts: concurrent
// requests for a not-yet-cached key may each run the simulator, so hit
// and sim-run counts can differ run to run under workers > 1 even when
// the evaluation results are byte-identical. Keep them out of golden
// snapshots; the wire package registers them separately for this reason.
func RegisterDefaultMetrics(r *telemetry.Registry) {
	if r == nil {
		return
	}
	stat := func(f func(Stats) float64) func() float64 {
		return func() float64 { return f(Default().Stats()) }
	}
	r.CounterFunc("evalpool_requests_total",
		"Evaluation requests against the shared engine.",
		stat(func(s Stats) float64 { return float64(s.Requests) }))
	r.CounterFunc("evalpool_sim_runs_total",
		"Simulator calls actually executed (non-memoized).",
		stat(func(s Stats) float64 { return float64(s.SimRuns) }))
	r.CounterFunc("evalpool_cache_hits_total",
		"Memo cache hits.",
		stat(func(s Stats) float64 { return float64(s.Hits) }))
	r.CounterFunc("evalpool_cache_misses_total",
		"Memo cache misses.",
		stat(func(s Stats) float64 { return float64(s.Misses) }))
	r.CounterFunc("evalpool_cache_evictions_total",
		"Memo cache LRU evictions.",
		stat(func(s Stats) float64 { return float64(s.Evictions) }))
	r.GaugeFunc("evalpool_cache_entries",
		"Memo cache current occupancy.",
		stat(func(s Stats) float64 { return float64(s.Entries) }))
	r.GaugeFunc("evalpool_cache_capacity",
		"Memo cache capacity (0 = caching disabled).",
		stat(func(s Stats) float64 { return float64(s.Capacity) }))
	r.GaugeFunc("evalpool_workers",
		"Worker bound of the shared engine.",
		stat(func(s Stats) float64 { return float64(s.Workers) }))
}
