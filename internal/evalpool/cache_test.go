package evalpool

import (
	"testing"

	"repro/internal/sim"
)

// TestCacheCapacityNeverExceedsRequested pins the capacity-reporting
// fix: newCache(total) used to round the per-shard bound up to one
// entry across all 16 shards, so a cache asked to hold 4 entries
// reported (and admitted) 16. The enforced capacity must never exceed
// the requested bound.
func TestCacheCapacityNeverExceedsRequested(t *testing.T) {
	for total := 1; total <= 64; total++ {
		c := newCache(total)
		if got := c.capacity(); got > total || got < 1 {
			t.Errorf("newCache(%d).capacity() = %d, want in [1, %d]", total, got, total)
		}
	}
	// Large bounds keep the full shard fan-out and the exact capacity.
	if got := newCache(DefaultCacheSize).capacity(); got != DefaultCacheSize {
		t.Errorf("newCache(%d).capacity() = %d", DefaultCacheSize, got)
	}
}

// TestCacheBoundEnforcedUnderInsertion floods a small cache with
// distinct keys and checks occupancy never exceeds the requested bound.
func TestCacheBoundEnforcedUnderInsertion(t *testing.T) {
	for _, total := range []int{1, 3, 8, 20} {
		c := newCache(total)
		for i := 0; i < 200; i++ {
			k := key{fp: 1, op: OpCPU, a: float64(i)}
			c.put(k, sim.Result{Perf: float64(i)})
			if n := c.len(); n > total {
				t.Fatalf("total=%d: %d entries after %d inserts", total, n, i+1)
			}
		}
		if c.evictions.Load() == 0 {
			t.Errorf("total=%d: no evictions recorded after overflow", total)
		}
	}
}

// TestCacheSmallBoundStillServesHits verifies a down-sharded cache still
// round-trips entries (the shard mask must match the reduced shard
// count).
func TestCacheSmallBoundStillServesHits(t *testing.T) {
	c := newCache(4)
	for i := 0; i < 4; i++ {
		k := key{fp: 7, op: OpCPU, a: float64(i)}
		c.put(k, sim.Result{Perf: float64(i)})
		res, ok := c.get(k)
		if !ok || res.Perf != float64(i) {
			t.Fatalf("entry %d: get = (%v, %v)", i, res.Perf, ok)
		}
	}
}

// TestEngineStatsCapacityMatchesRequest checks the user-facing
// -cache-size bound surfaces truthfully through Stats.
func TestEngineStatsCapacityMatchesRequest(t *testing.T) {
	e := New(Options{Workers: 1, CacheSize: 5})
	if got := e.Stats().Capacity; got > 5 || got < 1 {
		t.Errorf("Stats().Capacity = %d for -cache-size 5, want in [1, 5]", got)
	}
}
