// Package evalpool is the evaluation engine behind every sweep, curve,
// strategy comparison, and cluster-planning pass: all of them bottom out
// in pure, deterministic simulator calls over an allocation space, which
// makes the work embarrassingly parallel and perfectly cacheable.
//
// The engine has two layers:
//
//  1. a bounded worker pool (EvaluateAll) that fans simulator calls
//     across up to GOMAXPROCS goroutines with index-addressed result
//     slots, so the output order — and therefore every downstream table,
//     chart, and figure — is byte-identical to the serial path;
//  2. a sharded, keyed memo cache mapping (platform, workload, call
//     kind, caps/clocks) to the simulated result, with hit/miss/eviction
//     counters and a size bound, shared across a whole experiment run so
//     different artifacts stop re-simulating identical points.
//
// Both layers rely on the simulator being a pure function of its
// arguments. That holds for every entry point the engine dispatches
// (sim.RunCPU, sim.RunGPU, sim.RunGPUMemPower, sim.RunGPUOffsets) but
// NOT for fault-injection runs: the faults package perturbs caps and
// readings per call, so fault-mode execution must stay off the engine
// entirely (and does — internal/faults drives sim directly).
package evalpool

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// Op selects which simulator entry point a Request drives.
type Op uint8

// Supported simulator entry points.
const (
	// OpCPU is sim.RunCPU: Proc is the package cap, Mem the DRAM cap.
	OpCPU Op = iota + 1
	// OpGPUClock is sim.RunGPU: Proc is the board cap, Clock the memory
	// clock.
	OpGPUClock
	// OpGPUMemPower is sim.RunGPUMemPower: Proc is the board cap, Mem
	// the memory power budget steering the clock choice.
	OpGPUMemPower
	// OpGPUOffsets is sim.RunGPUOffsets: Proc is the board cap,
	// SMOffset and MemOffset the nvidia-settings clock offsets.
	OpGPUOffsets
)

// Request is one point of the allocation space to evaluate.
type Request struct {
	Op        Op
	Proc, Mem units.Power
	Clock     units.Frequency
	SMOffset  units.Frequency
	MemOffset units.Frequency
}

// Problem names the fixed half of an evaluation: the machine and the
// workload. The engine fingerprints both by content, so two problems
// with equal names but different parameters (e.g. a calibrated workload
// variant) never share cache entries.
type Problem struct {
	Platform hw.Platform
	Workload workload.Workload
}

// fingerprint hashes the problem content. The %+v rendering
// dereferences the platform's spec pointers and includes every field of
// every phase, so any parameter change yields a new key space.
func (pr *Problem) fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v|%+v", pr.Platform, pr.Workload)
	return h.Sum64()
}

// Options configures an Engine.
type Options struct {
	// Workers bounds the evaluation goroutines; 0 or negative means
	// GOMAXPROCS.
	Workers int
	// CacheSize bounds the memo cache in entries. 0 means
	// DefaultCacheSize; negative disables caching entirely.
	CacheSize int
}

// DefaultCacheSize is the memo cache bound when Options.CacheSize is 0.
// At roughly one small struct per allocation point, 64k entries cover
// every figure of the paper many times over.
const DefaultCacheSize = 1 << 16

// Engine evaluates allocation-space points in parallel with memoization.
// The zero value is not usable; construct with New.
type Engine struct {
	workers  int
	cache    *cache
	requests atomic.Uint64 // points asked for
	simRuns  atomic.Uint64 // simulator calls actually executed
}

// New returns an engine with the given options.
func New(o Options) *Engine {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	e := &Engine{workers: w}
	if o.CacheSize >= 0 {
		size := o.CacheSize
		if size == 0 {
			size = DefaultCacheSize
		}
		e.cache = newCache(size)
	}
	return e
}

// Serial returns the reference engine: one worker, no cache. Its output
// defines correctness for every other configuration.
func Serial() *Engine { return New(Options{Workers: 1, CacheSize: -1}) }

// Workers returns the engine's worker bound.
func (e *Engine) Workers() int { return e.workers }

var (
	defaultMu     sync.Mutex
	defaultEngine *Engine
)

// Default returns the process-wide shared engine, creating it with
// default options on first use. Sharing one engine across an experiment
// run is what lets independent artifacts reuse each other's points.
func Default() *Engine {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultEngine == nil {
		defaultEngine = New(Options{})
	}
	return defaultEngine
}

// Configure replaces the shared engine with a fresh one built from the
// options (the -workers / -cache-size command line knobs) and returns it.
func Configure(o Options) *Engine {
	e := New(o)
	SetDefault(e)
	return e
}

// SetDefault installs e as the shared engine and returns the previous
// one (which may be nil). Tests use it to pin a serial reference engine
// and restore the prior state.
func SetDefault(e *Engine) *Engine {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	prev := defaultEngine
	defaultEngine = e
	return prev
}

// Bound is a problem bound to an engine with its fingerprint computed
// once, for call sites that evaluate many points of the same problem
// one at a time (profiling binary searches, scheduler planning).
type Bound struct {
	e  *Engine
	pr Problem
	fp uint64
}

// Bind fingerprints the problem once and returns the bound handle.
func (e *Engine) Bind(pr Problem) *Bound {
	return &Bound{e: e, pr: pr, fp: pr.fingerprint()}
}

// Evaluate evaluates one point of the bound problem.
func (b *Bound) Evaluate(req Request) (sim.Result, error) {
	return b.e.evaluate(&b.pr, b.fp, req)
}

// Evaluate evaluates a single point, consulting the cache.
func (e *Engine) Evaluate(pr Problem, req Request) (sim.Result, error) {
	return e.evaluate(&pr, pr.fingerprint(), req)
}

// EvaluateAll evaluates every request and returns results in request
// order. Work is spread over the engine's workers; result slot i always
// holds the outcome of reqs[i], so the output is independent of
// scheduling. On error the first failure in request order is returned.
func (e *Engine) EvaluateAll(ctx context.Context, pr Problem, reqs []Request) ([]sim.Result, error) {
	out := make([]sim.Result, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}
	fp := pr.fingerprint()
	workers := e.workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 {
		for i := range reqs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res, err := e.evaluate(&pr, fp, reqs[i])
			if err != nil {
				return nil, err
			}
			out[i] = res
		}
		return out, nil
	}

	errs := make([]error, len(reqs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				out[i], errs[i] = e.evaluate(&pr, fp, reqs[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// evaluate resolves one point through the cache or the simulator.
func (e *Engine) evaluate(pr *Problem, fp uint64, req Request) (sim.Result, error) {
	e.requests.Add(1)
	k := req.key(fp)
	if e.cache != nil {
		if res, ok := e.cache.get(k); ok {
			return res, nil
		}
	}
	res, err := e.run(pr, req)
	if err != nil {
		return sim.Result{}, err
	}
	if e.cache != nil {
		e.cache.put(k, res)
	}
	return res, nil
}

// run dispatches to the simulator entry point the request names.
func (e *Engine) run(pr *Problem, req Request) (sim.Result, error) {
	e.simRuns.Add(1)
	w := pr.Workload
	switch req.Op {
	case OpCPU:
		return sim.RunCPU(pr.Platform, &w, req.Proc, req.Mem)
	case OpGPUClock:
		return sim.RunGPU(pr.Platform, &w, req.Proc, req.Clock)
	case OpGPUMemPower:
		return sim.RunGPUMemPower(pr.Platform, &w, req.Proc, req.Mem)
	case OpGPUOffsets:
		return sim.RunGPUOffsets(pr.Platform, &w, req.Proc, req.SMOffset, req.MemOffset)
	default:
		return sim.Result{}, fmt.Errorf("evalpool: unknown op %d", req.Op)
	}
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	// Workers is the engine's worker bound.
	Workers int
	// Requests counts evaluation requests; SimRuns counts the simulator
	// calls actually executed (Requests - SimRuns were served memoized,
	// up to concurrent duplicate computation of a not-yet-cached key).
	Requests, SimRuns uint64
	// Hits, Misses, and Evictions are memo cache counters; Entries and
	// Capacity describe its current occupancy. All four are zero when
	// caching is disabled.
	Hits, Misses, Evictions uint64
	Entries, Capacity       int
}

// HitRate returns hits over lookups, or 0 when nothing was looked up.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// String renders a one-line summary, e.g.
// "workers=8 requests=1520 sim-runs=420 cache-hits=1100 (72.4%) entries=420/65536 evictions=0".
func (s Stats) String() string {
	return fmt.Sprintf(
		"workers=%d requests=%d sim-runs=%d cache-hits=%d (%.1f%%) entries=%d/%d evictions=%d",
		s.Workers, s.Requests, s.SimRuns, s.Hits, 100*s.HitRate(),
		s.Entries, s.Capacity, s.Evictions)
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Workers:  e.workers,
		Requests: e.requests.Load(),
		SimRuns:  e.simRuns.Load(),
	}
	if e.cache != nil {
		s.Hits = e.cache.hits.Load()
		s.Misses = e.cache.misses.Load()
		s.Evictions = e.cache.evictions.Load()
		s.Entries = e.cache.len()
		s.Capacity = e.cache.capacity()
	}
	return s
}
