package evalpool

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/hw"
	"repro/internal/units"
	"repro/internal/workload"
)

func cpuProblem(t testing.TB, platform, wl string) Problem {
	t.Helper()
	p, err := hw.PlatformByName(platform)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByName(wl)
	if err != nil {
		t.Fatal(err)
	}
	return Problem{Platform: p, Workload: w}
}

func cpuRequests(budget, step units.Power) []Request {
	var reqs []Request
	for proc := units.Power(40); proc <= budget-40; proc += step {
		reqs = append(reqs, Request{Op: OpCPU, Proc: proc, Mem: budget - proc})
	}
	return reqs
}

// TestParallelMatchesSerial is the engine-level determinism guarantee:
// any worker count, with or without cache, cold or warm, produces
// results deeply equal to the serial reference in the same order.
func TestParallelMatchesSerial(t *testing.T) {
	cases := []struct {
		name string
		pr   Problem
		reqs []Request
	}{
		{"cpu", cpuProblem(t, "ivybridge", "stream"), cpuRequests(208, 4)},
		{"gpu", cpuProblem(t, "titanxp", "gpustream"), nil},
	}
	// GPU requests: the memory clock enumeration plus mem-power points.
	xp := cases[1].pr.Platform
	for _, clock := range xp.GPU.Mem.Clocks() {
		cases[1].reqs = append(cases[1].reqs, Request{Op: OpGPUClock, Proc: 140, Clock: clock})
	}
	for mem := units.Power(20); mem <= 60; mem += 10 {
		cases[1].reqs = append(cases[1].reqs, Request{Op: OpGPUMemPower, Proc: 140, Mem: mem})
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := Serial().EvaluateAll(context.Background(), tc.pr, tc.reqs)
			if err != nil {
				t.Fatal(err)
			}
			for _, opts := range []Options{
				{Workers: 4, CacheSize: -1}, // parallel, no cache
				{Workers: 4},                // parallel + cache
				{Workers: 16, CacheSize: 64},
			} {
				e := New(opts)
				for pass := 0; pass < 2; pass++ { // cold then warm cache
					got, err := e.EvaluateAll(context.Background(), tc.pr, tc.reqs)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("opts %+v pass %d: parallel results differ from serial", opts, pass)
					}
				}
			}
		})
	}
}

// TestCacheKeyCollisions verifies that problems differing only in
// platform or only in workload never share entries even at identical
// caps, and that distinct ops with coincidentally equal knob values
// yield distinct keys.
func TestCacheKeyCollisions(t *testing.T) {
	ivyStream := cpuProblem(t, "ivybridge", "stream")
	hasStream := cpuProblem(t, "haswell", "stream")
	ivyDgemm := cpuProblem(t, "ivybridge", "dgemm")
	req := Request{Op: OpCPU, Proc: 120, Mem: 88}

	fps := map[uint64]string{}
	for _, pr := range []Problem{ivyStream, hasStream, ivyDgemm} {
		pr := pr
		fp := pr.fingerprint()
		if prev, dup := fps[fp]; dup {
			t.Fatalf("fingerprint collision: %s/%s vs %s", pr.Platform.Name, pr.Workload.Name, prev)
		}
		fps[fp] = pr.Platform.Name + "/" + pr.Workload.Name
	}

	// With one shared cache, each pair must still get its own result.
	e := New(Options{Workers: 1})
	serial := Serial()
	for _, pr := range []Problem{ivyStream, hasStream, ivyDgemm} {
		got, err := e.Evaluate(pr, req)
		if err != nil {
			t.Fatal(err)
		}
		want, err := serial.Evaluate(pr, req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s/%s: cached result differs from direct simulation",
				pr.Platform.Name, pr.Workload.Name)
		}
	}
	if s := e.Stats(); s.Hits != 0 {
		t.Fatalf("distinct problems with equal caps produced %d cache hits", s.Hits)
	}

	// Same fingerprint, same numbers, different op → different key.
	fp := ivyStream.fingerprint()
	a := Request{Op: OpGPUClock, Proc: 140, Clock: 40}.key(fp)
	b := Request{Op: OpGPUMemPower, Proc: 140, Mem: 40}.key(fp)
	if a == b {
		t.Fatal("OpGPUClock and OpGPUMemPower with equal numeric knobs alias to one key")
	}
	// Same op, swapped knobs → different key.
	c := Request{Op: OpCPU, Proc: 88, Mem: 120}.key(fp)
	d := Request{Op: OpCPU, Proc: 120, Mem: 88}.key(fp)
	if c == d {
		t.Fatal("swapped proc/mem caps alias to one key")
	}
}

// TestRaceStress hammers one engine — with a cache small enough that
// every shard constantly evicts — from many goroutines evaluating an
// overlapping key set, while other goroutines snapshot stats. Run under
// -race (make check does), this is the engine's concurrency gate.
func TestRaceStress(t *testing.T) {
	pr := cpuProblem(t, "ivybridge", "mg")
	e := New(Options{Workers: 8, CacheSize: 8}) // 8 entries → per-shard bound 1
	want, err := Serial().Evaluate(pr, Request{Op: OpCPU, Proc: 120, Mem: 88})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const iters = 30
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Rotate over a small overlapping key set so gets, puts,
				// and evictions interleave on the same shards.
				proc := units.Power(100 + 4*((g+i)%6))
				res, err := e.Evaluate(pr, Request{Op: OpCPU, Proc: proc, Mem: 208 - proc})
				if err != nil {
					errCh <- err
					return
				}
				if proc == 120 && res.Perf != want.Perf {
					errCh <- fmt.Errorf("goroutine %d: perf %v != %v", g, res.Perf, want.Perf)
					return
				}
				_ = e.Stats()
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Entries > s.Capacity {
		t.Fatalf("cache holds %d entries over capacity %d", s.Entries, s.Capacity)
	}
	if s.Requests != goroutines*iters {
		t.Fatalf("requests %d, want %d", s.Requests, goroutines*iters)
	}
}

func TestEvictionBound(t *testing.T) {
	pr := cpuProblem(t, "ivybridge", "stream")
	e := New(Options{Workers: 1, CacheSize: 16})
	for i := 0; i < 80; i++ {
		proc := units.Power(40 + i)
		if _, err := e.Evaluate(pr, Request{Op: OpCPU, Proc: proc, Mem: 240 - proc}); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.Entries > s.Capacity {
		t.Fatalf("entries %d exceed capacity %d", s.Entries, s.Capacity)
	}
	if s.Evictions == 0 {
		t.Fatal("80 distinct points through a 16-entry cache evicted nothing")
	}
	if s.SimRuns != 80 {
		t.Fatalf("sim runs %d, want 80 (all distinct)", s.SimRuns)
	}
}

func TestCacheHitSkipsSimulation(t *testing.T) {
	pr := cpuProblem(t, "ivybridge", "stream")
	e := New(Options{Workers: 1})
	req := Request{Op: OpCPU, Proc: 120, Mem: 88}
	first, err := e.Evaluate(pr, req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Evaluate(pr, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cache hit returned a different result")
	}
	s := e.Stats()
	if s.SimRuns != 1 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v: want 1 sim run, 1 hit, 1 miss", s)
	}
	// The handed-out result must be isolated from the cached copy.
	if len(first.Phases) > 0 {
		first.Phases[0].Rate++
		third, err := e.Evaluate(pr, req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(third, second) {
			t.Fatal("mutating a returned result corrupted the cache")
		}
	}
}

func TestErrorPropagation(t *testing.T) {
	pr := cpuProblem(t, "ivybridge", "stream")
	// A GPU op against a CPU platform must fail, from every path.
	bad := Request{Op: OpGPUClock, Proc: 140, Clock: 5e9}
	if _, err := New(Options{}).Evaluate(pr, bad); err == nil {
		t.Fatal("GPU op on CPU platform succeeded")
	}
	reqs := []Request{{Op: OpCPU, Proc: 120, Mem: 88}, bad}
	if _, err := New(Options{Workers: 4}).EvaluateAll(context.Background(), pr, reqs); err == nil {
		t.Fatal("EvaluateAll swallowed the failure")
	}
	if _, err := Serial().Evaluate(pr, Request{Op: 0}); err == nil {
		t.Fatal("unknown op succeeded")
	}
}

func TestContextCancellation(t *testing.T) {
	pr := cpuProblem(t, "ivybridge", "stream")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New(Options{Workers: 4}).EvaluateAll(ctx, pr, cpuRequests(208, 4)); err == nil {
		t.Fatal("cancelled context did not abort the batch")
	}
	if _, err := Serial().EvaluateAll(ctx, pr, cpuRequests(208, 4)); err == nil {
		t.Fatal("cancelled context did not abort the serial batch")
	}
}

func TestEmptyBatch(t *testing.T) {
	pr := cpuProblem(t, "ivybridge", "stream")
	out, err := New(Options{}).EvaluateAll(context.Background(), pr, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Workers: 8, Requests: 10, SimRuns: 4, Hits: 6, Misses: 4, Capacity: 64, Entries: 4}
	if got := s.HitRate(); got != 0.6 {
		t.Fatalf("hit rate %v, want 0.6", got)
	}
	if str := s.String(); str == "" {
		t.Fatal("empty stats string")
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("zero stats hit rate not 0")
	}
}

func TestDefaultAndConfigure(t *testing.T) {
	prev := SetDefault(nil)
	defer SetDefault(prev)
	e1 := Default()
	if e1 == nil || Default() != e1 {
		t.Fatal("Default not stable")
	}
	e2 := Configure(Options{Workers: 3, CacheSize: 32})
	if Default() != e2 || e2.Workers() != 3 {
		t.Fatalf("Configure did not install the new engine")
	}
}
