// Package svgplot renders simple line/scatter charts as standalone SVG
// documents using only the standard library — enough to regenerate the
// paper's figures as images next to the textual tables. It deliberately
// supports only what the experiments need: multiple named series, axes
// with ticks and labels, a legend, and log-free linear scales.
package svgplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a renderable figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height are the SVG dimensions in pixels; zero values get
	// defaults (720x440).
	Width, Height int
	// Markers draws point markers in addition to lines.
	Markers bool
}

// Default chart geometry.
const (
	defaultWidth  = 720
	defaultHeight = 440
	marginLeft    = 70
	marginRight   = 160
	marginTop     = 46
	marginBottom  = 58
)

// palette holds the series stroke colors (colorblind-safe).
var palette = []string{
	"#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9", "#000000",
}

// Add appends a series built from parallel slices.
func (c *Chart) Add(name string, xs, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("svgplot: series %q: %d x values vs %d y values", name, len(xs), len(ys))
	}
	c.Series = append(c.Series, Series{Name: name, X: append([]float64(nil), xs...), Y: append([]float64(nil), ys...)})
	return nil
}

// SVG renders the chart. Charts with no finite data render a placeholder
// document rather than failing.
func (c *Chart) SVG() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = defaultWidth
	}
	if h <= 0 {
		h = defaultHeight
	}
	xlo, xhi, ylo, yhi, ok := c.bounds()
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		marginLeft, escape(c.Title))
	if !ok {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="13">(no data)</text>`+"\n",
			marginLeft, h/2)
		b.WriteString("</svg>\n")
		return b.String()
	}

	plotW := w - marginLeft - marginRight
	plotH := h - marginTop - marginBottom
	px := func(x float64) float64 {
		if xhi == xlo {
			return float64(marginLeft) + float64(plotW)/2
		}
		return float64(marginLeft) + (x-xlo)/(xhi-xlo)*float64(plotW)
	}
	py := func(y float64) float64 {
		if yhi == ylo {
			return float64(marginTop) + float64(plotH)/2
		}
		return float64(marginTop+plotH) - (y-ylo)/(yhi-ylo)*float64(plotH)
	}

	// Axes.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#444"/>`+"\n",
		marginLeft, marginTop, plotW, plotH)
	// Ticks: 5 on each axis.
	for i := 0; i <= 4; i++ {
		tx := xlo + (xhi-xlo)*float64(i)/4
		ty := ylo + (yhi-ylo)*float64(i)/4
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#444"/>`+"\n",
			px(tx), marginTop+plotH, px(tx), marginTop+plotH+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px(tx), marginTop+plotH+20, tick(tx))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#444"/>`+"\n",
			marginLeft-5, py(ty), marginLeft, py(ty))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end" dominant-baseline="middle">%s</text>`+"\n",
			marginLeft-8, py(ty), tick(ty))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, h-14, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="18" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 18 %d)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(c.YLabel))

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			if !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		if c.Markers || len(pts) == 1 {
			for _, p := range pts {
				xy := strings.SplitN(p, ",", 2)
				fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="3" fill="%s"/>`+"\n", xy[0], xy[1], color)
			}
		}
		// Legend entry.
		ly := marginTop + 8 + si*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			w-marginRight+10, ly, w-marginRight+34, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" dominant-baseline="middle">%s</text>`+"\n",
			w-marginRight+40, ly, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// bounds returns the finite data extent across all series.
func (c *Chart) bounds() (xlo, xhi, ylo, yhi float64, ok bool) {
	xlo, ylo = math.Inf(1), math.Inf(1)
	xhi, yhi = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			if !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			xlo, xhi = math.Min(xlo, s.X[i]), math.Max(xhi, s.X[i])
			ylo, yhi = math.Min(ylo, s.Y[i]), math.Max(yhi, s.Y[i])
			ok = true
		}
	}
	return
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// tick formats an axis tick value compactly.
func tick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
