package svgplot

import (
	"math"
	"strings"
	"testing"
)

func TestChartBasicRendering(t *testing.T) {
	var c Chart
	c.Title = "perf_max vs P_b"
	c.XLabel = "budget (W)"
	c.YLabel = "GFLOP/s"
	if err := c.Add("dgemm", []float64{100, 200, 300}, []float64{50, 250, 350}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("sra", []float64{100, 200, 300}, []float64{10, 40, 45}); err != nil {
		t.Fatal(err)
	}
	svg := c.SVG()
	for _, want := range []string{
		"<svg", "</svg>", "perf_max vs P_b", "budget (W)", "GFLOP/s",
		"dgemm", "sra", "polyline",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two polylines, one per series.
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("polyline count = %d, want 2", got)
	}
}

func TestChartMismatchedSeries(t *testing.T) {
	var c Chart
	if err := c.Add("bad", []float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestChartEmptyAndDegenerate(t *testing.T) {
	var c Chart
	c.Title = "empty"
	svg := c.SVG()
	if !strings.Contains(svg, "no data") {
		t.Error("empty chart should render a placeholder")
	}
	// All-NaN data is also "no data".
	c2 := Chart{Title: "nan"}
	if err := c2.Add("s", []float64{math.NaN()}, []float64{math.NaN()}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c2.SVG(), "no data") {
		t.Error("NaN-only chart should render a placeholder")
	}
	// A single point renders a marker, not a polyline.
	c3 := Chart{}
	if err := c3.Add("pt", []float64{5}, []float64{7}); err != nil {
		t.Fatal(err)
	}
	svg = c3.SVG()
	if strings.Contains(svg, "<polyline") {
		t.Error("single point should not draw a line")
	}
	if !strings.Contains(svg, "<circle") {
		t.Error("single point should draw a marker")
	}
	// Constant x/y must not divide by zero.
	c4 := Chart{}
	if err := c4.Add("flat", []float64{1, 1}, []float64{2, 2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c4.SVG(), "</svg>") {
		t.Error("flat chart failed to render")
	}
}

func TestChartMarkers(t *testing.T) {
	c := Chart{Markers: true}
	if err := c.Add("s", []float64{1, 2, 3}, []float64{1, 4, 9}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(c.SVG(), "<circle"); got != 3 {
		t.Errorf("marker count = %d, want 3", got)
	}
}

func TestChartEscaping(t *testing.T) {
	c := Chart{Title: `a<b & "c"`}
	if err := c.Add("s<1>", []float64{1, 2}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	svg := c.SVG()
	if strings.Contains(svg, "a<b") || strings.Contains(svg, "s<1>") {
		t.Error("XML not escaped")
	}
	if !strings.Contains(svg, "a&lt;b &amp; &quot;c&quot;") {
		t.Errorf("escaped title missing: %q", svg[:200])
	}
}

func TestChartSkipsNonFinitePoints(t *testing.T) {
	c := Chart{}
	if err := c.Add("s", []float64{1, 2, math.Inf(1), 4}, []float64{1, math.NaN(), 3, 4}); err != nil {
		t.Fatal(err)
	}
	svg := c.SVG()
	// The polyline holds only the two finite points.
	if !strings.Contains(svg, "<polyline") {
		t.Fatal("no polyline")
	}
	line := svg[strings.Index(svg, "<polyline"):]
	line = line[:strings.Index(line, "/>")]
	if got := strings.Count(line, ","); got != 2 {
		t.Errorf("polyline point count = %d, want 2 (finite only): %s", got, line)
	}
}

func TestTickFormatting(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		2.5:     "2.5",
		150:     "150",
		15000:   "15k",
		2.5e6:   "2.5M",
		0.00123: "0.00123",
	}
	for v, want := range cases {
		if got := tick(v); got != want {
			t.Errorf("tick(%v) = %q, want %q", v, got, want)
		}
	}
}
