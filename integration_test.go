package repro

import (
	"math"
	"testing"

	"repro/internal/category"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// TestFullPipelineCPUMatrix drives the complete workflow — profile,
// categorize, coordinate, simulate, verify — for every CPU benchmark on
// both server platforms across a budget range. It asserts the paper's
// cross-cutting invariants rather than any single figure.
func TestFullPipelineCPUMatrix(t *testing.T) {
	for _, platformName := range []string{"ivybridge", "haswell"} {
		p, err := hw.PlatformByName(platformName)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workload.CPUWorkloads() {
			w := w
			t.Run(platformName+"/"+w.Name, func(t *testing.T) {
				prof, err := profile.ProfileCPU(p, w)
				if err != nil {
					t.Fatal(err)
				}
				cp := prof.Critical

				// Invariant: critical powers are ordered and the scenario
				// classifier is total over a broad allocation grid.
				if err := cp.Validate(); err != nil {
					t.Fatal(err)
				}
				for proc := units.Power(40); proc <= 220; proc += 20 {
					for mem := units.Power(40); mem <= 220; mem += 20 {
						s := cp.Classify(proc, mem)
						if s < category.ScenarioI || s > category.ScenarioVI {
							t.Fatalf("classify(%v, %v) = %v", proc, mem, s)
						}
					}
				}

				demand := cp.CPUMax + cp.MemMax
				thresh := cp.ProductiveThreshold()
				if thresh >= demand {
					t.Fatalf("threshold %v not below demand %v", thresh, demand)
				}

				prevPerf := -1.0
				for _, budget := range []units.Power{
					thresh + 5, (thresh + demand) / 2, demand + 5, demand + 60,
				} {
					d := coord.CPU(prof, budget)
					if d.Status == coord.StatusTooSmall {
						t.Fatalf("budget %v above threshold rejected", budget)
					}
					// Invariant: COORD never over-allocates.
					if d.Alloc.Total() > budget+0.01 {
						t.Fatalf("budget %v: allocation %v", budget, d.Alloc)
					}
					res, err := sim.RunCPU(p, &w, d.Alloc.Proc, d.Alloc.Mem)
					if err != nil {
						t.Fatal(err)
					}
					// Invariant: the bound holds.
					if res.TotalPower > budget+1 {
						t.Fatalf("budget %v: actual %v", budget, res.TotalPower)
					}
					// Invariant: COORD's performance is monotone in budget.
					if res.Perf < prevPerf*(1-0.02) {
						t.Fatalf("budget %v: perf %v dropped from %v", budget, res.Perf, prevPerf)
					}
					prevPerf = res.Perf
					// Invariant: utilization and stall stay in range.
					if res.StallFrac < 0 || res.StallFrac > 1 ||
						res.ComputeUtil < 0 || res.ComputeUtil > 1 {
						t.Fatalf("budget %v: out-of-range metrics %+v", budget, res)
					}
				}

				// At a surplus budget, COORD reaches >=95% of the uncapped
				// performance.
				d := coord.CPU(prof, demand+60)
				res, err := sim.RunCPU(p, &w, d.Alloc.Proc, d.Alloc.Mem)
				if err != nil {
					t.Fatal(err)
				}
				if res.Perf < 0.95*prof.UncappedPerf {
					t.Errorf("surplus budget reaches only %.1f%% of uncapped",
						100*res.Perf/prof.UncappedPerf)
				}
			})
		}
	}
}

// TestFullPipelineGPUMatrix mirrors the CPU matrix for both cards.
func TestFullPipelineGPUMatrix(t *testing.T) {
	for _, platformName := range []string{"titanxp", "titanv"} {
		p, err := hw.PlatformByName(platformName)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workload.GPUWorkloads() {
			w := w
			t.Run(platformName+"/"+w.Name, func(t *testing.T) {
				prof, err := profile.ProfileGPU(p, w)
				if err != nil {
					t.Fatal(err)
				}
				prevPerf := -1.0
				for cap := p.GPU.MinCap; cap <= p.GPU.MaxCap; cap += 40 {
					d := coord.GPU(prof, cap, coord.DefaultGamma)
					if d.Alloc.Mem < prof.MemMin || d.Alloc.Mem > prof.MemMax {
						t.Fatalf("cap %v: memory budget %v outside card range", cap, d.Alloc.Mem)
					}
					res, err := sim.RunGPUMemPower(p, &w, cap, d.Alloc.Mem)
					if err != nil {
						t.Fatal(err)
					}
					if res.TotalPower.Watts() > cap.Watts()+12 {
						t.Fatalf("cap %v: board draw %v", cap, res.TotalPower)
					}
					if res.Perf < prevPerf*(1-0.02) {
						t.Fatalf("cap %v: perf %v dropped from %v", cap, res.Perf, prevPerf)
					}
					prevPerf = res.Perf
				}
			})
		}
	}
}

// TestOracleDominatesHeuristics cross-checks the exhaustive sweep against
// every heuristic on a sample of problems: no heuristic may beat the
// oracle by more than the sweep's quantization margin.
func TestOracleDominatesHeuristics(t *testing.T) {
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"stream", "dgemm", "cg"} {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := profile.ProfileCPU(p, w)
		if err != nil {
			t.Fatal(err)
		}
		for _, budget := range []units.Power{190, 230} {
			pb := core.NewProblem(p, w, budget)
			best, err := pb.PerfMax()
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range coord.CPUStrategies() {
				d := s.Decide(prof, budget)
				if d.Status == coord.StatusTooSmall {
					continue
				}
				ev, err := pb.Evaluate(d.Alloc)
				if err != nil {
					t.Fatal(err)
				}
				if ev.Result.Perf > best.Result.Perf*1.05 {
					t.Errorf("%s/%s at %v beats oracle by %.1f%%", name, s.Name, budget,
						100*(ev.Result.Perf/best.Result.Perf-1))
				}
			}
		}
	}
}

// TestEnergyEfficiencyPeaksNearKnee verifies the paper's Section 3.1
// budgeting insight quantitatively: performance-per-watt peaks at a
// moderate budget, not at the maximum.
func TestEnergyEfficiencyPeaksNearKnee(t *testing.T) {
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByName("mg")
	if err != nil {
		t.Fatal(err)
	}
	type point struct{ budget, eff float64 }
	var pts []point
	for budget := units.Power(170); budget <= 290; budget += 12 {
		pb := core.NewProblem(p, w, budget)
		best, err := pb.PerfMax()
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, point{budget.Watts(), best.PerfPerWatt()})
	}
	peakIdx := 0
	for i, pt := range pts {
		if pt.eff > pts[peakIdx].eff {
			peakIdx = i
		}
	}
	if peakIdx == len(pts)-1 {
		t.Errorf("efficiency still rising at the largest budget: %+v", pts)
	}
	// Efficiency at the peak clearly exceeds the largest budget's.
	last := pts[len(pts)-1]
	if pts[peakIdx].eff < last.eff*1.02 {
		t.Errorf("no efficiency knee: peak %.4f at %v vs %.4f at %v",
			pts[peakIdx].eff, pts[peakIdx].budget, last.eff, last.budget)
	}
}

// TestScenarioPowerSignatures checks the per-scenario actual-power
// signatures of Section 3.2 across multiple workloads at once.
func TestScenarioPowerSignatures(t *testing.T) {
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sra", "stream", "cg"} {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := profile.ProfileCPU(p, w)
		if err != nil {
			t.Fatal(err)
		}
		budget := prof.Critical.CPUMax + prof.Critical.MemMax + 10
		pb := core.NewProblem(p, w, budget)
		evals, err := pb.Sweep()
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range evals {
			s := prof.Critical.Classify(e.Alloc.Proc, e.Alloc.Mem)
			switch s {
			case category.ScenarioI:
				// Both at demand: actual within a whisker of the profile's
				// measured maxima.
				if math.Abs(e.Result.ProcPower.Watts()-prof.Critical.CPUMax.Watts()) > 0.1*prof.Critical.CPUMax.Watts() {
					t.Errorf("%s scenario I: CPU %v vs demand %v", name, e.Result.ProcPower, prof.Critical.CPUMax)
				}
			case category.ScenarioII:
				// CPU tracks its cap within the P-state quantum.
				if e.Result.ProcPower > e.Alloc.Proc+0.5 {
					t.Errorf("%s scenario II: CPU %v over its %v cap", name, e.Result.ProcPower, e.Alloc.Proc)
				}
			case category.ScenarioVI:
				// Cap below the floor: the package still draws its floor.
				if e.Result.ProcPower < p.CPU.IdlePower {
					t.Errorf("%s scenario VI: CPU below hardware floor", name)
				}
			}
		}
	}
}
