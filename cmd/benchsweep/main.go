// Command benchsweep measures the evaluation engine on a fixed,
// figure-class workload — budget curves over the Figure 2 grid for
// three CPU workloads, repeated the way a full experiment run revisits
// overlapping allocation grids — and writes the comparison to
// BENCH_sweep.json: ns per pass, evaluations per second, cache hit
// rate, and the cached engine's speedup over the serial reference.
//
// Usage:
//
//	benchsweep                  # write BENCH_sweep.json in the cwd
//	benchsweep -o out.json      # write elsewhere ("-" for stdout)
//	benchsweep -reps 10         # more repeated passes per engine
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/evalpool"
	"repro/internal/hw"
	"repro/internal/units"
	"repro/internal/workload"
)

// The measured workload: the Figure 2 budget grid for three CPU
// workloads on IvyBridge. Each pass regenerates all three curves.
const (
	platformName  = "ivybridge"
	budgetLo      = units.Power(130)
	budgetHi      = units.Power(300)
	budgetPoints  = 18
	checksumLabel = "sum of perf_max over all curve points"
)

var workloadNames = []string{"stream", "dgemm", "mg"}

// EngineRun is one engine configuration's measurement.
type EngineRun struct {
	Engine       string  `json:"engine"`
	Workers      int     `json:"workers"`
	CacheSize    int     `json:"cache_size"`
	Passes       int     `json:"passes"`
	NsPerPass    int64   `json:"ns_per_pass"`
	Evals        uint64  `json:"evals"`
	EvalsPerSec  float64 `json:"evals_per_sec"`
	SimRuns      uint64  `json:"sim_runs"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	Checksum     float64 `json:"checksum"`
}

// Report is the BENCH_sweep.json schema.
type Report struct {
	Workload      string      `json:"workload"`
	ChecksumLabel string      `json:"checksum_label"`
	Runs          []EngineRun `json:"runs"`
	// Speedup is cached-engine ns_per_pass over the serial reference.
	Speedup float64 `json:"speedup_cached_vs_serial"`
}

func main() {
	out := flag.String("o", "BENCH_sweep.json", "output path (- for stdout)")
	reps := flag.Int("reps", 10, "repeated passes per engine configuration")
	flag.Parse()

	p, err := hw.PlatformByName(platformName)
	if err != nil {
		fatal(err)
	}
	var wls []workload.Workload
	for _, name := range workloadNames {
		w, err := workload.ByName(name)
		if err != nil {
			fatal(err)
		}
		wls = append(wls, w)
	}
	budgets := core.BudgetRange(budgetLo, budgetHi, budgetPoints)

	// One pass regenerates every curve; the checksum keeps the work from
	// being optimized away and pins cross-engine agreement.
	pass := func(e *evalpool.Engine) float64 {
		sum := 0.0
		for _, w := range wls {
			pts, err := core.CurveOn(e, p, w, budgets)
			if err != nil {
				fatal(err)
			}
			for _, pt := range pts {
				sum += pt.PerfMax
			}
		}
		return sum
	}

	measure := func(name string, opts evalpool.Options) EngineRun {
		e := evalpool.New(opts)
		var checksum float64
		start := time.Now()
		for i := 0; i < *reps; i++ {
			checksum = pass(e)
		}
		elapsed := time.Since(start)
		s := e.Stats()
		run := EngineRun{
			Engine:    name,
			Workers:   s.Workers,
			CacheSize: s.Capacity,
			Passes:    *reps,
			NsPerPass: elapsed.Nanoseconds() / int64(*reps),
			Evals:     s.Requests,
			SimRuns:   s.SimRuns,
			Checksum:  checksum,
		}
		if sec := elapsed.Seconds(); sec > 0 {
			run.EvalsPerSec = float64(s.Requests) / sec
		}
		run.CacheHitRate = s.HitRate()
		return run
	}

	serial := measure("serial", evalpool.Options{Workers: 1, CacheSize: -1})
	parallel := measure("parallel-nocache", evalpool.Options{CacheSize: -1})
	cached := measure("parallel-cached", evalpool.Options{})

	if cached.Checksum != serial.Checksum || parallel.Checksum != serial.Checksum {
		fatal(fmt.Errorf("engines disagree: serial %v, parallel %v, cached %v",
			serial.Checksum, parallel.Checksum, cached.Checksum))
	}

	rep := Report{
		Workload: fmt.Sprintf("%s budget curves %v–%v (%d points) × %v, %d passes",
			platformName, budgetLo, budgetHi, budgetPoints, workloadNames, *reps),
		ChecksumLabel: checksumLabel,
		Runs:          []EngineRun{serial, parallel, cached},
	}
	if cached.NsPerPass > 0 {
		rep.Speedup = float64(serial.NsPerPass) / float64(cached.NsPerPass)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchsweep: serial %.2fms/pass, cached %.2fms/pass → %.1fx speedup, %.1f%% hit rate (%s)\n",
		float64(serial.NsPerPass)/1e6, float64(cached.NsPerPass)/1e6,
		rep.Speedup, 100*cached.CacheHitRate, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsweep:", err)
	os.Exit(1)
}
