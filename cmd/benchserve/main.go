// Command benchserve measures the allocation service under load and
// writes BENCH_serve.json: request latency percentiles (p50/p95),
// sustained throughput, the coalesce hit rate under a duplicate-heavy
// burst, and the backpressure knee — the burst concurrency at which a
// deliberately small worker pool starts shedding load with 429.
//
// The harness drives the service through a real HTTP server (the same
// handler pbc serve mounts), so the numbers include JSON decoding,
// coalescing, worker-pool scheduling, and response rendering.
//
// Usage:
//
//	benchserve                  # write BENCH_serve.json in the cwd
//	benchserve -o out.json      # write elsewhere ("-" for stdout)
//	benchserve -requests 400    # longer latency phase
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/allocclient"
	"repro/internal/allocsvc"
	"repro/internal/decisiontable"
	"repro/internal/faults"
	"repro/internal/wire"
)

// The latency-phase request mix: a realistic rotation over all three
// routes with repeated bodies, so the memo caches and the scheduler
// cache behave as they would under a monitoring loop that re-asks the
// same questions.
var mix = []struct{ route, body string }{
	{allocsvc.RouteCoord, `{"platform":"ivybridge","workload":"stream","budget_watts":208}`},
	{allocsvc.RouteCoord, `{"platform":"ivybridge","workload":"dgemm","budget_watts":170}`},
	{allocsvc.RouteCoord, `{"platform":"haswell","workload":"stream","budget_watts":190}`},
	{allocsvc.RouteCoord, `{"platform":"titanxp","workload":"gpustream","budget_watts":180}`},
	{allocsvc.RoutePlan, `{"platform":"ivybridge","workload":"ft","budget_watts":180}`},
	{allocsvc.RouteSchedule, `{"budget_watts":500,` +
		`"nodes":[{"id":"n1","platform":"ivybridge"},{"id":"n2","platform":"ivybridge"}],` +
		`"jobs":[{"id":"j1","workload":"stream"},{"id":"j2","workload":"dgemm"}]}`},
}

// LatencyPhase is the steady-load measurement.
type LatencyPhase struct {
	Workers      int     `json:"workers"`
	Clients      int     `json:"clients"`
	Requests     int     `json:"requests"`
	P50Ms        float64 `json:"latency_p50_ms"`
	P95Ms        float64 `json:"latency_p95_ms"`
	ThroughputRS float64 `json:"throughput_rps"`
}

// CoalescePhase is the duplicate-burst measurement.
type CoalescePhase struct {
	Workers         int     `json:"workers"`
	Bursts          int     `json:"bursts"`
	BurstSize       int     `json:"burst_size"`
	Requests        uint64  `json:"requests"`
	CoalesceHits    uint64  `json:"coalesce_hits"`
	CoalesceHitRate float64 `json:"coalesce_hit_rate"`
}

// KneePhase is the backpressure measurement: bursts of distinct
// requests against a deliberately small pool until 429s appear.
type KneePhase struct {
	Workers        int     `json:"workers"`
	QueueDepth     int     `json:"queue_depth"`
	KneeBurst      int     `json:"knee_burst"`
	Rejected       uint64  `json:"rejected_at_knee"`
	Served         uint64  `json:"served_at_knee"`
	ThroughputRS   float64 `json:"throughput_rps_at_knee"`
	RetryAfterSecs int     `json:"retry_after_secs"`
}

// ShardTopologyStats is one shard's view of the topology phase.
type ShardTopologyStats struct {
	Requests        uint64  `json:"requests"`
	CoalesceHits    uint64  `json:"coalesce_hits"`
	CoalesceHitRate float64 `json:"coalesce_hit_rate"`
}

// TopologyPhase is the N-instance resilience measurement: an
// allocclient ring over several shards, driven concurrently while a
// seeded kill schedule takes shards down and brings them back.
type TopologyPhase struct {
	Shards          int                  `json:"shards"`
	WorkersPerShard int                  `json:"workers_per_shard"`
	Drivers         int                  `json:"drivers"`
	Requests        int                  `json:"requests"`
	Seed            uint64               `json:"seed"`
	KillEvents      int                  `json:"kill_events"`
	ServedFresh     uint64               `json:"served_fresh"`
	ServedDegraded  uint64               `json:"served_degraded"`
	Errors          uint64               `json:"errors"`
	Availability    float64              `json:"availability"`
	AggregateRPS    float64              `json:"aggregate_rps"`
	Failovers       uint64               `json:"failovers"`
	Retries         uint64               `json:"retries"`
	PerShard        []ShardTopologyStats `json:"per_shard"`
}

// FastPathPhase compares the JSON baseline against the precomputed-
// table + binary-protocol hot path on the coord route: same request
// stream, one service without tables or binary, one with both.
type FastPathPhase struct {
	Workers      int     `json:"workers"`
	Requests     int     `json:"requests"`
	WarmMs       float64 `json:"table_warm_ms"`
	JSONP50Ms    float64 `json:"json_p50_ms"`
	JSONP95Ms    float64 `json:"json_p95_ms"`
	JSONRPS      float64 `json:"json_rps"`
	BinaryP50Ms  float64 `json:"binary_p50_ms"`
	BinaryP95Ms  float64 `json:"binary_p95_ms"`
	BinaryRPS    float64 `json:"binary_rps"`
	SpeedupP50   float64 `json:"p50_speedup"`
	TableHitRate float64 `json:"table_hit_rate"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
}

// Report is the BENCH_serve.json schema. Worker-pool sizes differ per
// phase (the knee phase deliberately runs a tiny pool), so each phase
// records its own.
type Report struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	Latency    LatencyPhase  `json:"latency"`
	Coalesce   CoalescePhase `json:"coalesce"`
	Knee       KneePhase     `json:"knee"`
	Topology   TopologyPhase `json:"topology"`
	FastPath   FastPathPhase `json:"fastpath"`
}

func post(client *http.Client, url, route, body string) (int, string, error) {
	resp, err := client.Post(url+route, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return 0, "", err
	}
	return resp.StatusCode, resp.Header.Get("Retry-After"), nil
}

// percentile returns the p-th percentile (nearest-rank) of sorted vs.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// runLatency drives the mix from several clients and measures
// per-request latency and aggregate throughput.
func runLatency(url string, workers, clients, requests int) (LatencyPhase, error) {
	perClient := requests / clients
	latCh := make(chan []time.Duration, clients)
	errCh := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		go func(c int) {
			client := &http.Client{}
			lats := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				r := mix[(c+i)%len(mix)]
				t0 := time.Now()
				code, _, err := post(client, url, r.route, r.body)
				if err != nil {
					errCh <- err
					return
				}
				if code != http.StatusOK {
					errCh <- fmt.Errorf("latency phase: %s returned %d", r.route, code)
					return
				}
				lats = append(lats, time.Since(t0))
			}
			latCh <- lats
		}(c)
	}
	var all []time.Duration
	for c := 0; c < clients; c++ {
		select {
		case lats := <-latCh:
			all = append(all, lats...)
		case err := <-errCh:
			return LatencyPhase{}, err
		}
	}
	elapsed := time.Since(start)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return LatencyPhase{
		Workers:      workers,
		Clients:      clients,
		Requests:     len(all),
		P50Ms:        percentile(all, 0.50).Seconds() * 1e3,
		P95Ms:        percentile(all, 0.95).Seconds() * 1e3,
		ThroughputRS: float64(len(all)) / elapsed.Seconds(),
	}, nil
}

// runCoalesce fires bursts of identical requests at a cold service so
// the duplicates land inside the leader's in-flight window. Each burst
// uses a fresh budget (a fresh coalescing key and a fresh scheduler),
// so every burst recomputes rather than hitting a warm response.
func runCoalesce(bursts, burstSize int) (CoalescePhase, error) {
	workers := runtime.GOMAXPROCS(0)
	svc := allocsvc.New(allocsvc.Config{Workers: workers})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := &http.Client{}

	for b := 0; b < bursts; b++ {
		body := fmt.Sprintf(`{"budget_watts":%d,`+
			`"nodes":[{"id":"n1","platform":"ivybridge"},{"id":"n2","platform":"haswell"}],`+
			`"jobs":[{"id":"j1","workload":"stream"},{"id":"j2","workload":"dgemm"},{"id":"j3","workload":"mg"}]}`,
			460+b)
		release := make(chan struct{})
		errs := make(chan error, burstSize)
		var wg sync.WaitGroup
		for i := 0; i < burstSize; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-release // start barrier: the whole burst fires at once
				code, _, err := post(client, srv.URL, allocsvc.RouteSchedule, body)
				if err == nil && code != http.StatusOK {
					err = fmt.Errorf("coalesce phase: status %d", code)
				}
				if err != nil {
					errs <- err
				}
			}()
		}
		close(release)
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return CoalescePhase{}, err
		}
	}
	st := svc.Stats()
	return CoalescePhase{
		Workers:         workers,
		Bursts:          bursts,
		BurstSize:       burstSize,
		Requests:        st.Requests,
		CoalesceHits:    st.Coalesced,
		CoalesceHitRate: st.CoalesceRate(),
	}, nil
}

// runKnee saturates a small pool with bursts of distinct requests of
// doubling size until the service starts shedding load with 429, and
// reports the burst size and sustained throughput at that point.
func runKnee() (KneePhase, error) {
	// A small pool with a fixed service time. The real decision
	// functions are analytic and finish in microseconds — faster than
	// requests arrive even under a burst, so admission control would
	// never see overlapping work and the knee would depend on host
	// scheduling noise. Stall imposes a deterministic per-request
	// service time, making the knee a property of the admission policy
	// (workers + queue) rather than of this machine.
	const workers, queue = 2, 4
	const stall = 2 * time.Millisecond
	svc := allocsvc.New(allocsvc.Config{Workers: workers, QueueDepth: queue, Stall: stall})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := &http.Client{}

	phase := KneePhase{Workers: workers, QueueDepth: queue}
	for burst := 4; burst <= 512; burst *= 2 {
		var rejected, served uint64
		var retryAfter int
		var mu sync.Mutex
		release := make(chan struct{})
		errs := make(chan error, burst)
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < burst; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-release
				// Distinct budgets: every request is a distinct key, so
				// coalescing cannot absorb the burst and admission
				// control must.
				body := fmt.Sprintf(
					`{"platform":"ivybridge","workload":"stream","budget_watts":%g}`,
					150+float64(i)/16)
				code, ra, err := post(client, srv.URL, allocsvc.RouteCoord, body)
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				defer mu.Unlock()
				switch code {
				case http.StatusOK:
					served++
				case http.StatusTooManyRequests:
					rejected++
					if s, err := fmt.Sscanf(ra, "%d", &retryAfter); s != 1 || err != nil {
						retryAfter = 0
					}
				default:
					errs <- fmt.Errorf("knee phase: status %d", code)
				}
			}(i)
		}
		close(release)
		wg.Wait()
		elapsed := time.Since(start)
		close(errs)
		if err := <-errs; err != nil {
			return KneePhase{}, err
		}
		if rejected > 0 {
			phase.KneeBurst = burst
			phase.Rejected = rejected
			phase.Served = served
			phase.ThroughputRS = float64(served) / elapsed.Seconds()
			phase.RetryAfterSecs = retryAfter
			return phase, nil
		}
	}
	return phase, fmt.Errorf("knee phase: no 429 up to burst 512 — backpressure is not engaging")
}

// runTopology stands up an N-shard topology (each shard its own
// allocsvc behind a kill-switch proxy), derives a seeded kill/restart
// schedule in request counts, and drives the resilient client from
// several goroutines. Availability counts fresh and degraded-local
// answers; only surfaced errors count against it.
func runTopology(shards, drivers, requests int, seed uint64) (TopologyPhase, error) {
	const shardWorkers = 2
	svcs := make([]*allocsvc.Service, shards)
	proxies := make([]*faults.ChaosProxy, shards)
	urls := make([]string, shards)
	for i := range svcs {
		// A small deterministic stall gives overlapping identical
		// requests a window to coalesce, as in the knee phase.
		svcs[i] = allocsvc.New(allocsvc.Config{Workers: shardWorkers, Stall: time.Millisecond})
		proxies[i] = faults.NewChaosProxy(svcs[i].Handler(), faults.ProxySpec{}, seed, strconv.Itoa(i))
		srv := httptest.NewServer(proxies[i])
		defer srv.Close()
		urls[i] = srv.URL
	}
	// The kill schedule is measured in requests and the run sustains
	// thousands of requests per second, so the breaker cooldown must be
	// of the same scale — a wall-clock cooldown much longer than an
	// outage would leave breakers open (and requests degraded) long
	// after the shard came back.
	client, err := allocclient.New(allocclient.Config{
		Shards:  urls,
		Breaker: allocclient.BreakerConfig{Threshold: 2, Cooldown: 10 * time.Millisecond},
		Timeout: 2 * time.Second,
	})
	if err != nil {
		return TopologyPhase{}, err
	}
	defer client.Close()

	schedule := faults.ShardKillSchedule(seed, shards, uint64(requests), 120, 40)
	killAt := make(map[uint64][]int)
	restartAt := make(map[uint64][]int)
	for _, o := range schedule {
		killAt[o.At] = append(killAt[o.At], o.Shard)
		restartAt[o.At+o.For] = append(restartAt[o.At+o.For], o.Shard)
	}

	topoMix := []struct{ platform, workload string }{
		{"ivybridge", "stream"}, {"haswell", "dgemm"},
		{"ivybridge", "ft"}, {"haswell", "stream"},
	}
	var next atomic.Int64
	var fresh, degraded, errors, failovers, retries atomic.Uint64
	ctx := context.Background()
	start := time.Now()
	var wg sync.WaitGroup
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := uint64(next.Add(1) - 1)
				if k >= uint64(requests) {
					return
				}
				for _, s := range restartAt[k] {
					proxies[s].Restart()
				}
				for _, s := range killAt[k] {
					proxies[s].Kill()
				}
				// Groups of 8 consecutive requests share one body, so
				// concurrent drivers produce coalescible duplicates.
				g := k / 8
				m := topoMix[g%uint64(len(topoMix))]
				_, meta, err := client.Coord(ctx, allocsvc.CoordRequest{
					Platform: m.platform, Workload: m.workload,
					Budget: 150 + float64(g%100),
				})
				failovers.Add(uint64(meta.Failovers))
				retries.Add(uint64(meta.Retries))
				switch {
				case err != nil:
					errors.Add(1)
				case meta.Source == allocclient.SourceLocal:
					degraded.Add(1)
				default:
					fresh.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	phase := TopologyPhase{
		Shards: shards, WorkersPerShard: shardWorkers,
		Drivers: drivers, Requests: requests, Seed: seed,
		KillEvents:     len(schedule),
		ServedFresh:    fresh.Load(),
		ServedDegraded: degraded.Load(),
		Errors:         errors.Load(),
		Availability:   float64(fresh.Load()+degraded.Load()) / float64(requests),
		AggregateRPS:   float64(requests) / elapsed.Seconds(),
		Failovers:      failovers.Load(),
		Retries:        retries.Load(),
	}
	for _, svc := range svcs {
		st := svc.Stats()
		phase.PerShard = append(phase.PerShard, ShardTopologyStats{
			Requests:        st.Requests,
			CoalesceHits:    st.Coalesced,
			CoalesceHitRate: st.CoalesceRate(),
		})
	}
	return phase, nil
}

// fastMix is the fastpath phase's coord-only request stream: the
// table-covered pairs of the latency mix. Budgets are perturbed per
// request so the tables interpolate instead of replaying one row, and
// the JSON side cannot ride a single warm key.
var fastMix = []struct {
	platform, workload string
	budget             float64
}{
	{"ivybridge", "stream", 208},
	{"ivybridge", "dgemm", 170},
	{"haswell", "stream", 190},
	{"titanxp", "gpustream", 180},
}

// measureHandler drives n requests through a handler in-process (via
// httptest.NewRecorder, no sockets) and returns sorted latencies plus
// elapsed wall time. Socket and client overhead is identical for both
// encodings, so excluding it isolates what the fast path changes:
// decode, dispatch, decide, encode.
func measureHandler(h http.Handler, n int, makeReq func(i int) *http.Request) ([]time.Duration, time.Duration, error) {
	lats := make([]time.Duration, 0, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		req := makeReq(i)
		rec := httptest.NewRecorder()
		t0 := time.Now()
		h.ServeHTTP(rec, req)
		lats = append(lats, time.Since(t0))
		if rec.Code != http.StatusOK {
			return nil, 0, fmt.Errorf("fastpath: request %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	elapsed := time.Since(start)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats, elapsed, nil
}

// fastBudget perturbs a pair's base budget so consecutive requests use
// distinct budgets within the table-covered range.
func fastBudget(base float64, i int) float64 {
	return base - 8 + float64(i%64)*0.25
}

// runFastPath measures the same coord stream twice through the same
// handler mount: once as JSON against a plain service (the baseline
// configuration the latency phase measures) and once as binary frames
// against a tables+binary service. The allocs/op of the table-hit hot
// path rides along via testing.Benchmark — the same measurement the
// Makefile's fastpath-alloc gate pins at zero.
func runFastPath(workers, requests int) (FastPathPhase, error) {
	phase := FastPathPhase{Workers: workers, Requests: requests}

	bodies := make([]string, requests)
	for i := range bodies {
		m := fastMix[i%len(fastMix)]
		bodies[i] = fmt.Sprintf(`{"platform":%q,"workload":%q,"budget_watts":%g}`,
			m.platform, m.workload, fastBudget(m.budget, i))
	}

	// Baseline: JSON route, no tables, no binary.
	jsvc := allocsvc.New(allocsvc.Config{Workers: workers})
	jh := jsvc.Handler()
	jlats, jelapsed, err := measureHandler(jh, requests, func(i int) *http.Request {
		req := httptest.NewRequest(http.MethodPost, allocsvc.RouteCoord, strings.NewReader(bodies[i]))
		req.Header.Set("Content-Type", "application/json")
		return req
	})
	if err != nil {
		return phase, err
	}

	// Fast path: decision tables warmed for exactly the measured pairs,
	// binary frames on the wire.
	set := decisiontable.New(decisiontable.Config{})
	warmStart := time.Now()
	for _, m := range fastMix {
		if coordBuilt, _ := set.Build(m.platform, m.workload); !coordBuilt {
			return phase, fmt.Errorf("fastpath: no coord table for %s/%s", m.platform, m.workload)
		}
	}
	phase.WarmMs = time.Since(warmStart).Seconds() * 1e3
	bsvc := allocsvc.New(allocsvc.Config{Workers: workers, Tables: set, Binary: true})
	bh := bsvc.Handler()
	frames := make([][]byte, requests)
	for i := range frames {
		m := fastMix[i%len(fastMix)]
		f, err := wire.AppendCoordRequest(nil, &wire.CoordRequest{
			Platform: m.platform, Workload: m.workload,
			Budget: fastBudget(m.budget, i), Strategy: "coord",
		})
		if err != nil {
			return phase, fmt.Errorf("fastpath: encoding request frame: %w", err)
		}
		frames[i] = f
	}
	blats, belapsed, err := measureHandler(bh, requests, func(i int) *http.Request {
		req := httptest.NewRequest(http.MethodPost, allocsvc.RouteCoord, strings.NewReader(string(frames[i])))
		req.Header.Set("Content-Type", allocsvc.BinaryContentType)
		return req
	})
	if err != nil {
		return phase, err
	}
	phase.TableHitRate = bsvc.Stats().TableHitRate()

	phase.JSONP50Ms = percentile(jlats, 0.50).Seconds() * 1e3
	phase.JSONP95Ms = percentile(jlats, 0.95).Seconds() * 1e3
	phase.JSONRPS = float64(requests) / jelapsed.Seconds()
	phase.BinaryP50Ms = percentile(blats, 0.50).Seconds() * 1e3
	phase.BinaryP95Ms = percentile(blats, 0.95).Seconds() * 1e3
	phase.BinaryRPS = float64(requests) / belapsed.Seconds()
	if phase.BinaryP50Ms > 0 {
		phase.SpeedupP50 = phase.JSONP50Ms / phase.BinaryP50Ms
	}

	// Allocs/op of the hot path (decode → table → encode) over
	// table-hit frames only: misses fall through to the exact path,
	// which allocates by design. The gate pins the hit path at zero.
	var hits [][]byte
	for i, f := range frames {
		m := fastMix[i%len(fastMix)]
		var req = wire.CoordRequest{Platform: m.platform, Workload: m.workload,
			Budget: fastBudget(m.budget, i), Strategy: "coord"}
		var out wire.CoordResponse
		if set.Coord(&req, &out) {
			hits = append(hits, f)
		}
	}
	if len(hits) == 0 {
		return phase, fmt.Errorf("fastpath: no table-hit frames to benchmark")
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		buf := wire.GetBuf()
		defer wire.PutBuf(buf)
		for i := 0; i < b.N; i++ {
			code, _, out := bsvc.ServeBinary(context.Background(), hits[i%len(hits)], (*buf)[:0])
			if code != http.StatusOK {
				b.Fatalf("status %d", code)
			}
			*buf = out
		}
	})
	phase.AllocsPerOp = res.AllocsPerOp()
	return phase, nil
}

func main() {
	out := flag.String("o", "BENCH_serve.json", "output path (\"-\" for stdout)")
	clients := flag.Int("clients", 8, "concurrent clients in the latency phase")
	requests := flag.Int("requests", 240, "total requests in the latency phase")
	workers := flag.Int("workers", 0, "allocation service worker pool in the latency and fastpath phases (0 = match -clients)")
	fastRequests := flag.Int("fast-requests", 2000, "requests per encoding in the fastpath phase")
	bursts := flag.Int("bursts", 4, "duplicate bursts in the coalesce phase")
	burstSize := flag.Int("burst-size", 16, "identical requests per coalesce burst")
	shards := flag.Int("shards", 3, "allocsvc instances in the topology phase")
	topoRequests := flag.Int("topo-requests", 400, "total requests in the topology phase")
	topoSeed := flag.Uint64("topo-seed", 42, "seed for the topology phase's kill/restart schedule")
	flag.Parse()
	if *workers <= 0 {
		// The latency phase drives -clients concurrent requests; a pool
		// sized below that (the old default collapsed to GOMAXPROCS,
		// i.e. 1 on small hosts) serializes the phase and measures queue
		// wait, not service latency.
		*workers = *clients
	}

	rep := Report{GOMAXPROCS: runtime.GOMAXPROCS(0)}

	// Latency phase runs against a pool sized to the offered load.
	svc := allocsvc.New(allocsvc.Config{Workers: *workers})
	srv := httptest.NewServer(svc.Handler())
	var err error
	rep.Latency, err = runLatency(srv.URL, *workers, *clients, *requests)
	srv.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}

	rep.Coalesce, err = runCoalesce(*bursts, *burstSize)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
	if rep.Coalesce.CoalesceHits == 0 {
		fmt.Fprintln(os.Stderr, "benchserve: coalesce phase produced zero hits — coalescing is not engaging")
		os.Exit(1)
	}

	rep.Knee, err = runKnee()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}

	rep.Topology, err = runTopology(*shards, 4, *topoRequests, *topoSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
	if rep.Topology.Availability < 0.99 {
		fmt.Fprintf(os.Stderr, "benchserve: topology availability %.4f under the kill schedule — failover is not engaging\n",
			rep.Topology.Availability)
		os.Exit(1)
	}

	rep.FastPath, err = runFastPath(*workers, *fastRequests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
	// A small fraction of budgets lands in exact-only slivers (segments
	// the builder could not hold to ε and left to the exact path), so
	// the gate is coverage, not perfection.
	if rep.FastPath.TableHitRate < 0.95 {
		fmt.Fprintf(os.Stderr, "benchserve: fastpath table hit rate %.4f — tables are not covering the mix\n",
			rep.FastPath.TableHitRate)
		os.Exit(1)
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "-" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: p50 %.2f ms, p95 %.2f ms, %.0f req/s; coalesce rate %.1f%%; 429 knee at burst %d; "+
		"%d-shard availability %.1f%% at %.0f req/s under %d kill events; "+
		"fastpath %.3f ms -> %.3f ms p50 (%.1fx), hit rate %.1f%%, %d allocs/op\n",
		*out, rep.Latency.P50Ms, rep.Latency.P95Ms, rep.Latency.ThroughputRS,
		100*rep.Coalesce.CoalesceHitRate, rep.Knee.KneeBurst,
		rep.Topology.Shards, 100*rep.Topology.Availability, rep.Topology.AggregateRPS, rep.Topology.KillEvents,
		rep.FastPath.JSONP50Ms, rep.FastPath.BinaryP50Ms, rep.FastPath.SpeedupP50,
		100*rep.FastPath.TableHitRate, rep.FastPath.AllocsPerOp)
}
