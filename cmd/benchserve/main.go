// Command benchserve measures the allocation service under load and
// writes BENCH_serve.json: request latency percentiles (p50/p95),
// sustained throughput, the coalesce hit rate under a duplicate-heavy
// burst, and the backpressure knee — the burst concurrency at which a
// deliberately small worker pool starts shedding load with 429.
//
// The harness drives the service through a real HTTP server (the same
// handler pbc serve mounts), so the numbers include JSON decoding,
// coalescing, worker-pool scheduling, and response rendering.
//
// Usage:
//
//	benchserve                  # write BENCH_serve.json in the cwd
//	benchserve -o out.json      # write elsewhere ("-" for stdout)
//	benchserve -requests 400    # longer latency phase
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/allocsvc"
)

// The latency-phase request mix: a realistic rotation over all three
// routes with repeated bodies, so the memo caches and the scheduler
// cache behave as they would under a monitoring loop that re-asks the
// same questions.
var mix = []struct{ route, body string }{
	{allocsvc.RouteCoord, `{"platform":"ivybridge","workload":"stream","budget_watts":208}`},
	{allocsvc.RouteCoord, `{"platform":"ivybridge","workload":"dgemm","budget_watts":170}`},
	{allocsvc.RouteCoord, `{"platform":"haswell","workload":"stream","budget_watts":190}`},
	{allocsvc.RouteCoord, `{"platform":"titanxp","workload":"gpustream","budget_watts":180}`},
	{allocsvc.RoutePlan, `{"platform":"ivybridge","workload":"ft","budget_watts":180}`},
	{allocsvc.RouteSchedule, `{"budget_watts":500,` +
		`"nodes":[{"id":"n1","platform":"ivybridge"},{"id":"n2","platform":"ivybridge"}],` +
		`"jobs":[{"id":"j1","workload":"stream"},{"id":"j2","workload":"dgemm"}]}`},
}

// LatencyPhase is the steady-load measurement.
type LatencyPhase struct {
	Clients      int     `json:"clients"`
	Requests     int     `json:"requests"`
	P50Ms        float64 `json:"latency_p50_ms"`
	P95Ms        float64 `json:"latency_p95_ms"`
	ThroughputRS float64 `json:"throughput_rps"`
}

// CoalescePhase is the duplicate-burst measurement.
type CoalescePhase struct {
	Bursts          int     `json:"bursts"`
	BurstSize       int     `json:"burst_size"`
	Requests        uint64  `json:"requests"`
	CoalesceHits    uint64  `json:"coalesce_hits"`
	CoalesceHitRate float64 `json:"coalesce_hit_rate"`
}

// KneePhase is the backpressure measurement: bursts of distinct
// requests against a deliberately small pool until 429s appear.
type KneePhase struct {
	Workers        int     `json:"workers"`
	QueueDepth     int     `json:"queue_depth"`
	KneeBurst      int     `json:"knee_burst"`
	Rejected       uint64  `json:"rejected_at_knee"`
	Served         uint64  `json:"served_at_knee"`
	ThroughputRS   float64 `json:"throughput_rps_at_knee"`
	RetryAfterSecs int     `json:"retry_after_secs"`
}

// Report is the BENCH_serve.json schema.
type Report struct {
	Workers  int           `json:"workers"`
	Latency  LatencyPhase  `json:"latency"`
	Coalesce CoalescePhase `json:"coalesce"`
	Knee     KneePhase     `json:"knee"`
}

func post(client *http.Client, url, route, body string) (int, string, error) {
	resp, err := client.Post(url+route, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return 0, "", err
	}
	return resp.StatusCode, resp.Header.Get("Retry-After"), nil
}

// percentile returns the p-th percentile (nearest-rank) of sorted vs.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// runLatency drives the mix from several clients and measures
// per-request latency and aggregate throughput.
func runLatency(url string, clients, requests int) (LatencyPhase, error) {
	perClient := requests / clients
	latCh := make(chan []time.Duration, clients)
	errCh := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		go func(c int) {
			client := &http.Client{}
			lats := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				r := mix[(c+i)%len(mix)]
				t0 := time.Now()
				code, _, err := post(client, url, r.route, r.body)
				if err != nil {
					errCh <- err
					return
				}
				if code != http.StatusOK {
					errCh <- fmt.Errorf("latency phase: %s returned %d", r.route, code)
					return
				}
				lats = append(lats, time.Since(t0))
			}
			latCh <- lats
		}(c)
	}
	var all []time.Duration
	for c := 0; c < clients; c++ {
		select {
		case lats := <-latCh:
			all = append(all, lats...)
		case err := <-errCh:
			return LatencyPhase{}, err
		}
	}
	elapsed := time.Since(start)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return LatencyPhase{
		Clients:      clients,
		Requests:     len(all),
		P50Ms:        percentile(all, 0.50).Seconds() * 1e3,
		P95Ms:        percentile(all, 0.95).Seconds() * 1e3,
		ThroughputRS: float64(len(all)) / elapsed.Seconds(),
	}, nil
}

// runCoalesce fires bursts of identical requests at a cold service so
// the duplicates land inside the leader's in-flight window. Each burst
// uses a fresh budget (a fresh coalescing key and a fresh scheduler),
// so every burst recomputes rather than hitting a warm response.
func runCoalesce(bursts, burstSize int) (CoalescePhase, error) {
	svc := allocsvc.New(allocsvc.Config{Workers: runtime.GOMAXPROCS(0)})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := &http.Client{}

	for b := 0; b < bursts; b++ {
		body := fmt.Sprintf(`{"budget_watts":%d,`+
			`"nodes":[{"id":"n1","platform":"ivybridge"},{"id":"n2","platform":"haswell"}],`+
			`"jobs":[{"id":"j1","workload":"stream"},{"id":"j2","workload":"dgemm"},{"id":"j3","workload":"mg"}]}`,
			460+b)
		release := make(chan struct{})
		errs := make(chan error, burstSize)
		var wg sync.WaitGroup
		for i := 0; i < burstSize; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-release // start barrier: the whole burst fires at once
				code, _, err := post(client, srv.URL, allocsvc.RouteSchedule, body)
				if err == nil && code != http.StatusOK {
					err = fmt.Errorf("coalesce phase: status %d", code)
				}
				if err != nil {
					errs <- err
				}
			}()
		}
		close(release)
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return CoalescePhase{}, err
		}
	}
	st := svc.Stats()
	return CoalescePhase{
		Bursts:          bursts,
		BurstSize:       burstSize,
		Requests:        st.Requests,
		CoalesceHits:    st.Coalesced,
		CoalesceHitRate: st.CoalesceRate(),
	}, nil
}

// runKnee saturates a small pool with bursts of distinct requests of
// doubling size until the service starts shedding load with 429, and
// reports the burst size and sustained throughput at that point.
func runKnee() (KneePhase, error) {
	// A small pool with a fixed service time. The real decision
	// functions are analytic and finish in microseconds — faster than
	// requests arrive even under a burst, so admission control would
	// never see overlapping work and the knee would depend on host
	// scheduling noise. Stall imposes a deterministic per-request
	// service time, making the knee a property of the admission policy
	// (workers + queue) rather than of this machine.
	const workers, queue = 2, 4
	const stall = 2 * time.Millisecond
	svc := allocsvc.New(allocsvc.Config{Workers: workers, QueueDepth: queue, Stall: stall})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := &http.Client{}

	phase := KneePhase{Workers: workers, QueueDepth: queue}
	for burst := 4; burst <= 512; burst *= 2 {
		var rejected, served uint64
		var retryAfter int
		var mu sync.Mutex
		release := make(chan struct{})
		errs := make(chan error, burst)
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < burst; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-release
				// Distinct budgets: every request is a distinct key, so
				// coalescing cannot absorb the burst and admission
				// control must.
				body := fmt.Sprintf(
					`{"platform":"ivybridge","workload":"stream","budget_watts":%g}`,
					150+float64(i)/16)
				code, ra, err := post(client, srv.URL, allocsvc.RouteCoord, body)
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				defer mu.Unlock()
				switch code {
				case http.StatusOK:
					served++
				case http.StatusTooManyRequests:
					rejected++
					if s, err := fmt.Sscanf(ra, "%d", &retryAfter); s != 1 || err != nil {
						retryAfter = 0
					}
				default:
					errs <- fmt.Errorf("knee phase: status %d", code)
				}
			}(i)
		}
		close(release)
		wg.Wait()
		elapsed := time.Since(start)
		close(errs)
		if err := <-errs; err != nil {
			return KneePhase{}, err
		}
		if rejected > 0 {
			phase.KneeBurst = burst
			phase.Rejected = rejected
			phase.Served = served
			phase.ThroughputRS = float64(served) / elapsed.Seconds()
			phase.RetryAfterSecs = retryAfter
			return phase, nil
		}
	}
	return phase, fmt.Errorf("knee phase: no 429 up to burst 512 — backpressure is not engaging")
}

func main() {
	out := flag.String("o", "BENCH_serve.json", "output path (\"-\" for stdout)")
	clients := flag.Int("clients", 8, "concurrent clients in the latency phase")
	requests := flag.Int("requests", 240, "total requests in the latency phase")
	bursts := flag.Int("bursts", 4, "duplicate bursts in the coalesce phase")
	burstSize := flag.Int("burst-size", 16, "identical requests per coalesce burst")
	flag.Parse()

	rep := Report{Workers: runtime.GOMAXPROCS(0)}

	// Latency phase runs against its own default-sized service.
	svc := allocsvc.New(allocsvc.Config{})
	srv := httptest.NewServer(svc.Handler())
	var err error
	rep.Latency, err = runLatency(srv.URL, *clients, *requests)
	srv.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}

	rep.Coalesce, err = runCoalesce(*bursts, *burstSize)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
	if rep.Coalesce.CoalesceHits == 0 {
		fmt.Fprintln(os.Stderr, "benchserve: coalesce phase produced zero hits — coalescing is not engaging")
		os.Exit(1)
	}

	rep.Knee, err = runKnee()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "-" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: p50 %.2f ms, p95 %.2f ms, %.0f req/s; coalesce rate %.1f%%; 429 knee at burst %d\n",
		*out, rep.Latency.P50Ms, rep.Latency.P95Ms, rep.Latency.ThroughputRS,
		100*rep.Coalesce.CoalesceHitRate, rep.Knee.KneeBurst)
}
