// Command benchdes benchmarks the discrete-event traffic simulator and
// writes BENCH_des.json: a seeded 10k-node, million-job run through the
// fast engine, with event/job throughput, the trace hash, and a replay
// check (the run executes twice and must reproduce the hash bit for
// bit).
//
// Usage:
//
//	benchdes                    # write BENCH_des.json in the cwd
//	benchdes -o -               # print the report to stdout
//	benchdes -nodes 1000 -rate 4 -horizon 3600   # smaller sweep
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/units"
	"repro/internal/workload"
)

// Report is the BENCH_des.json schema.
type Report struct {
	Schema string `json:"schema"`

	Platform    string  `json:"platform"`
	Workload    string  `json:"workload"`
	Nodes       int     `json:"nodes"`
	BudgetWatts float64 `json:"budget_watts"`
	ArrivalSpec string  `json:"arrival_spec"`
	FaultSpec   string  `json:"fault_spec,omitempty"`
	Seed        uint64  `json:"seed"`
	HorizonSec  float64 `json:"horizon_sec"`
	Mode        string  `json:"mode"`

	JobsArrived   int     `json:"jobs_arrived"`
	JobsCompleted int     `json:"jobs_completed"`
	EngineEvents  int     `json:"engine_events"`
	MakespanSec   float64 `json:"makespan_sec"`
	EnergyJoules  float64 `json:"energy_joules"`
	AvgWaitSec    float64 `json:"avg_wait_sec"`
	AvgTurnSec    float64 `json:"avg_turnaround_sec"`
	Shocks        int     `json:"shocks"`
	Readmissions  int     `json:"readmissions"`

	WallMS       float64 `json:"wall_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
	JobsPerSec   float64 `json:"jobs_per_sec"`
	TraceHash    string  `json:"trace_hash"`
	ReplayOK     bool    `json:"replay_ok"`
	ReplayWallMS float64 `json:"replay_wall_ms"`
}

func main() {
	out := flag.String("o", "BENCH_des.json", "output path (\"-\" for stdout)")
	nNodes := flag.Int("nodes", 10000, "cluster node count")
	budget := flag.Float64("budget", 208, "per-node power bound in watts")
	platName := flag.String("platform", "ivybridge", "platform name")
	wlName := flag.String("workload", "stream", "workload name")
	arrival := flag.String("arrival-spec", "rate=35,burst=2,diurnal=0.3,period=3600,units=2e12,spread=0.5",
		"arrival spec (tuned to generate >1M jobs over the default horizon)")
	faultSpec := flag.String("fault-spec", "shock.mtbs=3600,shock.frac=0.15,shock.len=120",
		"fault spec for budget shocks during the run (empty = fault-free)")
	seed := flag.Uint64("seed", 1, "arrival and fault seed")
	horizon := flag.Float64("horizon", 15000, "arrival window in simulated seconds")
	flag.Parse()

	if err := run(*out, *nNodes, *budget, *platName, *wlName, *arrival, *faultSpec, *seed, *horizon); err != nil {
		fmt.Fprintln(os.Stderr, "benchdes:", err)
		os.Exit(1)
	}
}

func run(out string, nNodes int, budget float64, platName, wlName, arrival, faultSpec string, seed uint64, horizon float64) error {
	p, err := hw.PlatformByName(platName)
	if err != nil {
		return err
	}
	w, err := workload.ByName(wlName)
	if err != nil {
		return err
	}
	arr, err := des.ParseArrivalSpec(arrival)
	if err != nil {
		return err
	}
	nodes := make([]cluster.Node, nNodes)
	for i := range nodes {
		nodes[i] = cluster.Node{ID: fmt.Sprintf("node%05d", i), Platform: p}
	}
	sched, err := cluster.NewScheduler(units.Power(budget*float64(nNodes)), nodes)
	if err != nil {
		return err
	}
	cfg := des.Config{
		Sched: sched, Workload: w,
		Policy: cluster.PolicyCoord, Discipline: cluster.DisciplineBackfill,
		Arrivals: arr, Seed: seed, Horizon: horizon,
		Mode: des.ModeFast,
	}
	if faultSpec != "" {
		sp, err := faults.ParseSpec(faultSpec)
		if err != nil {
			return err
		}
		if !sp.Zero() {
			cfg.Injector = faults.NewInjector(sp, seed)
		}
	}

	start := time.Now()
	res, err := des.Run(cfg)
	if err != nil {
		return err
	}
	wall := time.Since(start)

	start = time.Now()
	again, err := des.Run(cfg)
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	replayWall := time.Since(start)

	rep := Report{
		Schema:      "pbc-des-bench/1",
		Platform:    p.Name,
		Workload:    w.Name,
		Nodes:       nNodes,
		BudgetWatts: budget,
		ArrivalSpec: arr.String(),
		FaultSpec:   faultSpec,
		Seed:        seed,
		HorizonSec:  horizon,
		Mode:        res.Mode.String(),

		JobsArrived:   res.Arrived,
		JobsCompleted: res.Completed,
		EngineEvents:  res.EngineEvents,
		MakespanSec:   res.Makespan,
		EnergyJoules:  res.Energy.Joules(),
		AvgWaitSec:    res.AvgWait,
		AvgTurnSec:    res.AvgTurnaround,
		Shocks:        res.Faults.Shocks,
		Readmissions:  res.Faults.Readmissions,

		WallMS:       float64(wall.Microseconds()) / 1e3,
		EventsPerSec: float64(res.EngineEvents) / wall.Seconds(),
		JobsPerSec:   float64(res.Completed) / wall.Seconds(),
		TraceHash:    fmt.Sprintf("%016x", res.TraceHash),
		ReplayOK:     again.TraceHash == res.TraceHash && again.Makespan == res.Makespan,
		ReplayWallMS: float64(replayWall.Microseconds()) / 1e3,
	}
	if !rep.ReplayOK {
		return fmt.Errorf("replay diverged: trace %016x vs %016x", res.TraceHash, again.TraceHash)
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(out, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchdes: %d jobs, %d events in %v (%.3gM events/s, %.3gk jobs/s), replay OK -> %s\n",
		rep.JobsCompleted, rep.EngineEvents, wall.Round(time.Millisecond),
		rep.EventsPerSec/1e6, rep.JobsPerSec/1e3, out)
	return nil
}
