// Command ablation runs the design-choice ablation studies: duty-gated
// memory issue, overlap p-norm, profiling demand margin, and COORD's
// gamma parameter. Each study prints its table and whether the design
// choice demonstrably matters.
//
//	ablation                # run every study
//	ablation overlap gamma  # run selected studies
package main

import (
	"fmt"
	"os"

	"repro/internal/ablation"
)

func main() {
	studies := ablation.All()
	if len(os.Args) > 1 {
		studies = studies[:0]
		for _, id := range os.Args[1:] {
			s, err := ablation.ByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ablation:", err)
				os.Exit(2)
			}
			studies = append(studies, s)
		}
	}
	failed := 0
	for _, s := range studies {
		out, err := s.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablation: %s: %v\n", s.ID, err)
			failed++
			continue
		}
		fmt.Print(out.Render())
		fmt.Println()
		if !out.Passed() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "ablation: %d stud(ies) failed\n", failed)
		os.Exit(1)
	}
}
