// Command experiments regenerates every table and figure of the paper's
// evaluation section and reports whether each checked claim holds in the
// reproduction. With -out it also writes per-artifact text and CSV files.
//
// Usage:
//
//	experiments                 # run everything, print to stdout
//	experiments fig3 fig9       # run selected artifacts
//	experiments -out results    # also write results/<id>.txt and .csv
//	experiments -parallel 1     # serial artifact regeneration
//	experiments -engine-stats   # report evaluation-engine counters
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/evalpool"
	"repro/internal/experiments"
	"repro/internal/telemetry"
	"repro/internal/telemetry/wire"
)

func main() {
	outDir := flag.String("out", "", "directory to write per-artifact .txt and .csv files")
	parallel := flag.Int("parallel", 0, "artifact regenerations to run concurrently (0 = GOMAXPROCS)")
	workers := flag.Int("workers", 0, "evaluation workers per engine (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache-size", 0, "memo cache bound in entries (0 = default, negative disables)")
	engineStats := flag.Bool("engine-stats", false, "print evaluation-engine statistics to stderr when done")
	telem := flag.Bool("telemetry", false, "instrument the run and print a metrics snapshot to stderr when done")
	flag.Parse()

	evalpool.Configure(evalpool.Options{Workers: *workers, CacheSize: *cacheSize})
	var reg *telemetry.Registry
	if *telem {
		reg = telemetry.New()
		wire.Instrument(reg)
		wire.InstrumentEngine(reg)
	}

	runners := experiments.All()
	if args := flag.Args(); len(args) > 0 {
		runners = runners[:0]
		for _, id := range args {
			r, err := experiments.ByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	failed := 0
	for _, rr := range experiments.RunAll(runners, *parallel) {
		if rr.Err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", rr.Runner.ID, rr.Err)
			failed++
			continue
		}
		out := rr.Output
		fmt.Print(out.Render())
		fmt.Println()
		if !out.Passed() {
			failed++
		}
		if *outDir != "" {
			if err := writeArtifact(*outDir, &out); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}
	if *engineStats {
		fmt.Fprintf(os.Stderr, "engine: %s\n", evalpool.Default().Stats())
	}
	if reg != nil {
		wire.Instrument(nil)
		fmt.Fprint(os.Stderr, reg.Snapshot().Text())
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d artifact(s) with failed claims\n", failed)
		os.Exit(1)
	}
}

func writeArtifact(dir string, out *experiments.Output) error {
	txt := filepath.Join(dir, out.ID+".txt")
	if err := os.WriteFile(txt, []byte(out.Render()), 0o644); err != nil {
		return err
	}
	var csv string
	for _, t := range out.Tables {
		csv += "# " + t.Title + "\n" + t.CSV() + "\n"
	}
	if err := os.WriteFile(filepath.Join(dir, out.ID+".csv"), []byte(csv), 0o644); err != nil {
		return err
	}
	for i := range out.Figures {
		name := out.ID + ".svg"
		if len(out.Figures) > 1 {
			name = fmt.Sprintf("%s_%d.svg", out.ID, i+1)
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(out.Figures[i].SVG()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
