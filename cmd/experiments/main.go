// Command experiments regenerates every table and figure of the paper's
// evaluation section and reports whether each checked claim holds in the
// reproduction. With -out it also writes per-artifact text and CSV files.
//
// Usage:
//
//	experiments              # run everything, print to stdout
//	experiments fig3 fig9    # run selected artifacts
//	experiments -out results # also write results/<id>.txt and .csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	outDir := flag.String("out", "", "directory to write per-artifact .txt and .csv files")
	flag.Parse()

	runners := experiments.All()
	if args := flag.Args(); len(args) > 0 {
		runners = runners[:0]
		for _, id := range args {
			r, err := experiments.ByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	failed := 0
	for _, r := range runners {
		out, err := r.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", r.ID, err)
			failed++
			continue
		}
		fmt.Print(out.Render())
		fmt.Println()
		if !out.Passed() {
			failed++
		}
		if *outDir != "" {
			if err := writeArtifact(*outDir, &out); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d artifact(s) with failed claims\n", failed)
		os.Exit(1)
	}
}

func writeArtifact(dir string, out *experiments.Output) error {
	txt := filepath.Join(dir, out.ID+".txt")
	if err := os.WriteFile(txt, []byte(out.Render()), 0o644); err != nil {
		return err
	}
	var csv string
	for _, t := range out.Tables {
		csv += "# " + t.Title + "\n" + t.CSV() + "\n"
	}
	if err := os.WriteFile(filepath.Join(dir, out.ID+".csv"), []byte(csv), 0o644); err != nil {
		return err
	}
	for i := range out.Figures {
		name := out.ID + ".svg"
		if len(out.Figures) > 1 {
			name = fmt.Sprintf("%s_%d.svg", out.ID, i+1)
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(out.Figures[i].SVG()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
