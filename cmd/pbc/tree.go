package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/powertree"
	"repro/internal/report"
	"repro/internal/units"
)

// defaultTreeSpec is the two-rack heterogeneous example from the docs:
// a CPU rack mixing Ivy Bridge and Haswell nodes and a capped GPU rack.
const defaultTreeSpec = "cpu=ivybridge/stream*2^2,haswell/dgemm^1;" +
	"gpu@450=titanxp/sgemm^1,titanv/gpustream"

// cmdTree solves one hierarchical budget division: a datacenter budget
// water-filled across racks and nodes with SLA-aware shedding. With
// -shock it additionally re-solves after a fractional rack-cap cut;
// with -fault-spec it replays a seeded timeline of datacenter budget
// shocks down the tree.
func cmdTree(args []string) error {
	fs := flag.NewFlagSet("tree", flag.ExitOnError)
	spec := fs.String("spec", defaultTreeSpec,
		"tree spec: rack[@capW]=platform/workload[*count][^priority],... ; rack=...")
	budget := fs.Float64("budget", 900, "datacenter power budget in watts")
	shock := fs.String("shock", "", "re-solve after a rack-cap shock, as rack=frac (e.g. gpu=0.3)")
	faultSpec := fs.String("fault-spec", "", "fault spec driving a shock timeline (shock.* keys; see internal/faults)")
	seed := fs.Uint64("fault-seed", 1, "shock-timeline seed; same seed = identical timeline")
	horizon := fs.Float64("horizon", 120, "shock-timeline horizon in seconds")
	telem := telemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if dump := telem(); dump != nil {
		defer dump()
	}

	tree, err := powertree.ParseTreeSpec(*spec)
	if err != nil {
		return err
	}
	if *budget < 0 {
		return fmt.Errorf("budget must be non-negative, got %g W", *budget)
	}
	cs, err := powertree.BuildCurves(tree)
	if err != nil {
		return err
	}
	floor, max, err := cs.Demand(tree)
	if err != nil {
		return err
	}
	res, err := powertree.SolveCurves(cs, tree, units.Power(*budget))
	if err != nil {
		return err
	}

	fmt.Printf("tree: %s\n", tree.String())
	fmt.Printf("demand: floor %s, max %s; budget %s (oversubscription %.2fx)\n\n",
		floor, max, res.Budget, res.Oversubscription)
	printTreeResult(res)

	if *shock != "" {
		rack, frac, err := parseShockArg(*shock)
		if err != nil {
			return err
		}
		shocked, err := powertree.ApplyShock(cs, tree, rack, frac)
		if err != nil {
			return err
		}
		sres, err := powertree.SolveCurves(cs, shocked, units.Power(*budget))
		if err != nil {
			return err
		}
		fmt.Printf("\nafter shock (%s cap cut %.0f%%):\n\n", rack, frac*100)
		printTreeResult(sres)
	}

	if *faultSpec != "" {
		sp, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			return err
		}
		inj := faults.NewInjector(sp, *seed)
		steps, err := powertree.ShockPlan(cs, tree, units.Power(*budget), inj, *horizon)
		if err != nil {
			return err
		}
		tb := report.NewTable(
			fmt.Sprintf("shock timeline: seed %d, horizon %gs", *seed, *horizon),
			"t", "for", "dc budget", "granted", "surplus", "shed", "perf")
		for _, st := range steps {
			mark := ""
			if st.Shocked {
				mark = " *"
			}
			tb.AddRow(
				fmt.Sprintf("%.1fs%s", st.At, mark),
				fmt.Sprintf("%.1fs", st.Duration),
				st.Budget.String(),
				st.Granted.String(),
				st.Surplus.String(),
				fmt.Sprintf("%d", st.Shed),
				fmt.Sprintf("%.1f", st.TotalPerf),
			)
		}
		fmt.Println()
		fmt.Print(tb.String())
		fmt.Println("\n* = under a budget shock")
	}
	return nil
}

func printTreeResult(res *powertree.Result) {
	rt := report.NewTable(
		fmt.Sprintf("racks: granted %s of %s, surplus %s, total perf %.1f",
			res.Granted, res.Budget, res.Surplus, res.TotalPerf),
		"rack", "cap", "grant", "kept", "shed")
	for _, rr := range res.Racks {
		cap := "-"
		if rr.Cap > 0 {
			cap = rr.Cap.String()
		}
		rt.AddRow(rr.Rack, cap, rr.Budget.String(),
			fmt.Sprintf("%d", rr.Kept), fmt.Sprintf("%d", rr.Shed))
	}
	fmt.Print(rt.String())

	gt := report.NewTable("leaf grants",
		"node", "rack", "prio", "grant", "proc", "mem", "status", "perf")
	for _, g := range res.Grants {
		gt.AddRow(g.Node, g.Rack, fmt.Sprintf("%d", g.Priority),
			g.Budget.String(), g.Alloc.Proc.String(), g.Alloc.Mem.String(),
			g.Status.String(), fmt.Sprintf("%.1f", g.Perf))
	}
	fmt.Println()
	fmt.Print(gt.String())

	if len(res.Shed) > 0 {
		st := report.NewTable("shed leaves (admission control)",
			"node", "rack", "prio", "floor", "reason")
		for _, sh := range res.Shed {
			st.AddRow(sh.Node, sh.Rack, fmt.Sprintf("%d", sh.Priority),
				sh.Floor.String(), sh.Reason)
		}
		fmt.Println()
		fmt.Print(st.String())
	}
}

// parseShockArg parses "rack=frac" with frac in [0,1).
func parseShockArg(s string) (string, float64, error) {
	i := strings.IndexByte(s, '=')
	if i <= 0 {
		return "", 0, fmt.Errorf("shock must be rack=frac, got %q", s)
	}
	frac, err := strconv.ParseFloat(s[i+1:], 64)
	if err != nil {
		return "", 0, fmt.Errorf("shock fraction %q: %v", s[i+1:], err)
	}
	return s[:i], frac, nil
}
