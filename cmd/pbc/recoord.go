package main

import (
	"flag"
	"fmt"

	"repro/internal/hw"
	"repro/internal/recoord"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

// cmdRecoord runs the online re-coordination controller on a phased GPU
// workload and compares it against static COORD and the default
// governor over the same virtual-time trace.
func cmdRecoord(args []string) error {
	fs := flag.NewFlagSet("recoord", flag.ExitOnError)
	platform := fs.String("platform", "h100", "GPU platform name (pbc list platforms)")
	wl := fs.String("workload", "llmserve", "phased GPU workload name (pbc list workloads)")
	phases := fs.String("phases", "", `custom phase spec instead of -workload, e.g. "seq=1024,out=512" or "prefill=2,decode=1"`)
	budget := fs.Float64("budget", 350, "board power budget in watts")
	rounds := fs.Int("rounds", recoord.DefaultRounds, "phase cycles to run")
	engine := engineFlags(fs)
	telem := telemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stats := engine()
	if dump := telem(); dump != nil {
		defer dump()
	}
	p, err := hw.PlatformByName(*platform)
	if err != nil {
		return err
	}
	var w workload.Workload
	if *phases != "" {
		if w, err = workload.ParsePhaseSpec(*phases); err != nil {
			return err
		}
	} else if w, err = workload.ByName(*wl); err != nil {
		return err
	}

	res, err := recoord.Run(recoord.Config{
		Platform: p,
		Workload: w,
		Budget:   units.Power(*budget),
		Rounds:   *rounds,
	})
	if err != nil {
		return err
	}

	tb := report.NewTable(
		fmt.Sprintf("online re-coordination: %s on %s at %s", res.Workload, res.Platform, res.Budget),
		"phase", "ticks", "lag", "recoord", "P_cap (W)", "P_mem (W)",
		fmt.Sprintf("online (%s)", res.PerfUnit), "static", "governor")
	for _, v := range res.Visits {
		re := ""
		if v.Recoordinated {
			re = "yes"
		}
		tb.AddRow(v.Phase, fmt.Sprint(v.Ticks), fmt.Sprint(v.LagTicks), re,
			report.FormatFloat(v.Setting.Proc.Watts()),
			report.FormatFloat(v.Setting.Mem.Watts()),
			report.FormatFloat(v.OnlinePerf),
			report.FormatFloat(v.StaticPerf),
			report.FormatFloat(v.GovernorPerf))
	}
	fmt.Print(tb.String())
	fmt.Printf("\nstatic COORD opens at cap %s, mem %s; %d re-coordinations, %d switches\n",
		res.StaticSetting.Proc, res.StaticSetting.Mem, res.Recoordinations, res.Switches)
	fmt.Printf("online %s %s vs static %s (gain %+.1f%%) vs governor %s\n",
		report.FormatFloat(res.OnlinePerf), res.PerfUnit,
		report.FormatFloat(res.StaticPerf), 100*res.Gain(),
		report.FormatFloat(res.GovernorPerf))
	if stats {
		printEngineStats()
	}
	return nil
}
