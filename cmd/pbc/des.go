package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/powertree"
	"repro/internal/report"
	"repro/internal/units"
)

// defaultArrivalSpec is a representative bursty diurnal arrival mix for
// the DES demo: about one arrival event per 20 simulated seconds,
// small geometric bursts, a mild day/night swing, and job sizes spread
// around the catalog default.
const defaultArrivalSpec = "rate=0.05,burst=1.5,diurnal=0.3,period=3600,units=2e12,spread=0.5"

func cmdDes(args []string) error {
	fs := flag.NewFlagSet("des", flag.ExitOnError)
	platform, wl := platformAndWorkload(fs)
	budget := fs.Float64("budget", 208, "per-node power bound in watts")
	nNodes := fs.Int("nodes", 16, "cluster node count (ignored with -tree-spec)")
	treeSpec := fs.String("tree-spec", "",
		"derive the cluster from a budget-tree solve: -budget becomes the datacenter total, "+
			"nodes are the kept CPU leaves, and the pool is their tree grant")
	arrival := fs.String("arrival-spec", defaultArrivalSpec, "arrival spec (key=value,...; see internal/des)")
	seed := fs.Uint64("seed", 1, "arrival-process seed; same seed = identical trace")
	horizonS := fs.Float64("horizon", 3600, "arrival window in simulated seconds")
	jobs0 := fs.Int("jobs0", 0, "round-synchronous jobs injected at t=0 ahead of the arrival trace")
	faultSpec := fs.String("fault-spec", "", "fault spec for outages/shocks (empty = fault-free; see internal/faults)")
	faultSeed := fs.Uint64("fault-seed", 1, "fault injection seed")
	mode := fs.String("mode", "fast", "engine: fast (scales) or exact (byte-identical to the round loop)")
	fifo := fs.Bool("fifo", false, "strict FIFO queue order instead of power-aware backfill")
	replay := fs.Bool("replay-check", false, "run twice and fail unless the traces replay byte-identically")
	telem := telemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if dump := telem(); dump != nil {
		defer dump()
	}
	p, w, err := resolve(*platform, *wl)
	if err != nil {
		return err
	}
	if *budget <= 0 {
		return fmt.Errorf("budget must be positive, got %g W", *budget)
	}
	if *nNodes <= 0 {
		return fmt.Errorf("nodes must be positive, got %d", *nNodes)
	}
	arr, err := des.ParseArrivalSpec(*arrival)
	if err != nil {
		return err
	}
	m, err := des.ParseMode(*mode)
	if err != nil {
		return err
	}
	disc := cluster.DisciplineBackfill
	if *fifo {
		disc = cluster.DisciplineFIFO
	}

	var nodes []cluster.Node
	pool := units.Power(*budget * float64(*nNodes))
	if *treeSpec != "" {
		// The tree solve divides the datacenter budget; the DES cluster is
		// its kept CPU leaves, powered by exactly their tree grants. The
		// solve is deterministic, so -replay-check determinism carries
		// through unchanged.
		tree, err := powertree.ParseTreeSpec(*treeSpec)
		if err != nil {
			return err
		}
		tres, err := powertree.Solve(tree, units.Power(*budget))
		if err != nil {
			return err
		}
		pool = 0
		for _, g := range tres.Grants {
			tp, err := hw.PlatformByName(g.Platform)
			if err != nil {
				return err
			}
			if tp.Kind != hw.KindCPU {
				continue
			}
			nodes = append(nodes, cluster.Node{ID: g.Node, Platform: tp})
			pool += g.Budget
		}
		if len(nodes) == 0 {
			return fmt.Errorf("tree-spec: no CPU leaves kept at %s (floor demand exceeds the budget?)", units.Power(*budget))
		}
		fmt.Printf("tree: %s granted of %s requested; cluster = %d kept CPU leaves, pool %s (%d leaves shed)\n",
			tres.Granted, tres.Budget, len(nodes), pool, len(tres.Shed))
	} else {
		nodes = make([]cluster.Node, *nNodes)
		for i := range nodes {
			nodes[i] = cluster.Node{ID: fmt.Sprintf("node%05d", i), Platform: p}
		}
	}
	sched, err := cluster.NewScheduler(pool, nodes)
	if err != nil {
		return err
	}
	unitsPer := arr.Units
	if unitsPer == 0 {
		unitsPer = 2e12
	}
	var t0 []cluster.TimedJob
	for i := 0; i < *jobs0; i++ {
		t0 = append(t0, cluster.TimedJob{
			Job:   cluster.Job{ID: fmt.Sprintf("job%05d", i), Workload: w},
			Units: unitsPer,
		})
	}
	cfg := des.Config{
		Sched: sched, Workload: w,
		Policy: cluster.PolicyCoord, Discipline: disc,
		Jobs: t0, Arrivals: arr, Seed: *seed, Horizon: *horizonS,
		Mode: m,
	}
	if *faultSpec != "" {
		sp, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			return err
		}
		if !sp.Zero() {
			cfg.Injector = faults.NewInjector(sp, *faultSeed)
		}
	}

	wall := time.Now()
	res, err := des.Run(cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(wall)

	tb := report.NewTable(
		fmt.Sprintf("discrete-event simulation: %d x %s running %s (%s engine, seed %d)",
			len(nodes), p.Name, w.Name, res.Mode, *seed),
		"metric", "value")
	tb.AddRow("arrival spec", arr.String())
	tb.AddRow("horizon", fmtSeconds(*horizonS))
	tb.AddRow("jobs arrived", fmt.Sprintf("%d", res.Arrived))
	tb.AddRow("jobs completed", fmt.Sprintf("%d", res.Completed))
	tb.AddRow("engine events", fmt.Sprintf("%d", res.EngineEvents))
	tb.AddRow("makespan", fmtSeconds(res.Makespan))
	tb.AddRow("energy", res.Energy.String())
	tb.AddRow("avg wait", fmtSeconds(res.AvgWait))
	tb.AddRow("avg turnaround", fmtSeconds(res.AvgTurnaround))
	tb.AddRow("max slowdown", fmt.Sprintf("%.2fx", res.MaxSlowdown))
	if cfg.Injector != nil {
		tb.AddRow("node failures", fmt.Sprintf("%d", res.Faults.NodeFailures))
		tb.AddRow("node recoveries", fmt.Sprintf("%d", res.Faults.NodeRecoveries))
		tb.AddRow("job re-admissions", fmt.Sprintf("%d", res.Faults.Readmissions))
		tb.AddRow("budget shocks", fmt.Sprintf("%d", res.Faults.Shocks))
		tb.AddRow("budget reclaimed", res.Faults.BudgetReclaimed.String())
	}
	tb.AddRow("trace hash", fmt.Sprintf("%016x", res.TraceHash))
	fmt.Print(tb.String())
	if secs := elapsed.Seconds(); secs > 0 {
		fmt.Printf("\nwall %v  (%.3gM events/s, %.3gk jobs/s)\n",
			elapsed.Round(time.Millisecond),
			float64(res.EngineEvents)/secs/1e6, float64(res.Completed)/secs/1e3)
	}

	if *replay {
		again, err := des.Run(cfg)
		if err != nil {
			return fmt.Errorf("replay: %w", err)
		}
		if again.TraceHash != res.TraceHash || again.Makespan != res.Makespan {
			return fmt.Errorf("replay diverged: trace %016x vs %016x, makespan %g vs %g",
				res.TraceHash, again.TraceHash, res.Makespan, again.Makespan)
		}
		fmt.Printf("replay check: OK (trace %016x reproduced)\n", res.TraceHash)
	}
	return nil
}
