package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/units"
)

// defaultFaultSpec is a representative mixed-fault scenario: lossy noisy
// sensors, unreliable cap actuation, node crashes with repair, and
// occasional facility budget shocks.
const defaultFaultSpec = "sensor.drop=0.05,sensor.noise=0.02,cap.fail=0.1,cap.stuck=0.05," +
	"node.mtbf=45,node.mttr=30,shock.mtbs=60,shock.frac=0.25,shock.len=10"

func cmdFaults(args []string) error {
	fs := flag.NewFlagSet("faults", flag.ExitOnError)
	platform, wl := platformAndWorkload(fs)
	budget := fs.Float64("budget", 208, "node power bound in watts")
	unitsN := fs.Float64("units", 2e12, "work units per node run")
	dtMs := fs.Int("dt", 250, "control loop step in milliseconds")
	spec := fs.String("fault-spec", defaultFaultSpec, "fault spec (key=value,...; see internal/faults)")
	seed := fs.Uint64("fault-seed", 1, "fault injection seed; same seed = identical run")
	nNodes := fs.Int("nodes", 3, "cluster demo node count (0 = skip the cluster demo)")
	logLines := fs.Int("log", 6, "transition-log lines to print per section (0 = none)")
	telem := telemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if dump := telem(); dump != nil {
		defer dump()
	}
	p, w, err := resolve(*platform, *wl)
	if err != nil {
		return err
	}
	if p.Kind != hw.KindCPU {
		return fmt.Errorf("faults supports CPU platforms")
	}
	if *budget <= 0 {
		return fmt.Errorf("budget must be positive, got %g W", *budget)
	}
	sp, err := faults.ParseSpec(*spec)
	if err != nil {
		return err
	}
	bound := units.Power(*budget)
	dt := time.Duration(*dtMs) * time.Millisecond

	// Node-level sweep: the same run at increasing fault rates, against
	// the fault-free baseline (scale 0).
	scales := []float64{0, 0.5, 1, 2}
	tb := report.NewTable(
		fmt.Sprintf("resilience sweep: %s on %s at %s (seed %d)", w.Name, p.Name, bound, *seed),
		"fault scale", "elapsed", "perf retained", "worst overshoot", "over-tolerance time",
		"retries", "readback hits", "watchdog", "shocks", "sensor drops")
	var baseRate float64
	var lastLog *trace.EventLog
	for _, sc := range scales {
		scaled := sp.Scale(sc)
		var inj *faults.Injector
		if !scaled.Zero() {
			inj = faults.NewInjector(scaled, *seed)
		}
		log := &trace.EventLog{}
		res, err := faults.RunNode(p, w, bound, *unitsN, dt, inj, log)
		if err != nil {
			return fmt.Errorf("scale %g: %w", sc, err)
		}
		if sc == 0 {
			baseRate = res.Rate
		}
		retained := "-"
		if baseRate > 0 {
			retained = fmt.Sprintf("%.1f%%", res.Rate/baseRate*100)
		}
		tb.AddRow(
			fmt.Sprintf("%gx", sc),
			res.Elapsed.Round(time.Millisecond).String(),
			retained,
			res.WorstOvershoot.String(),
			res.OvershootTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", res.Retry.Retries),
			fmt.Sprintf("%d", res.Retry.ReadbackMismatches),
			fmt.Sprintf("%d", res.WatchdogEngagements),
			fmt.Sprintf("%d", res.Shocks),
			fmt.Sprintf("%d/%d", res.SensorDrops, res.SensorReads),
		)
		if !scaled.Zero() {
			lastLog = log
		}
	}
	fmt.Print(tb.String())
	fmt.Printf("\nguard tolerance: %s over the bound; spec: %s\n", faults.GuardTolerance, sp)
	printLogTail("node transitions (highest fault scale)", lastLog, *logLines)

	if *nNodes <= 0 {
		return nil
	}

	// Cluster demo: node failures, re-admissions, and budget shocks under
	// the same spec and seed.
	nodes := make([]cluster.Node, *nNodes)
	for i := range nodes {
		nodes[i] = cluster.Node{ID: fmt.Sprintf("node%02d", i), Platform: p}
	}
	clusterBudget := units.Power(bound.Watts() * float64(*nNodes))
	sched, err := cluster.NewScheduler(clusterBudget, nodes)
	if err != nil {
		return err
	}
	var jobs []cluster.TimedJob
	for i := 0; i < 2*(*nNodes); i++ {
		jobs = append(jobs, cluster.TimedJob{
			Job:   cluster.Job{ID: fmt.Sprintf("job%02d", i), Workload: w},
			Units: *unitsN,
		})
	}
	clean, err := sched.RunQueueFaulty(jobs, cluster.PolicyCoord, cluster.DisciplineBackfill, nil, nil)
	if err != nil {
		return err
	}
	log := &trace.EventLog{}
	faulty, err := sched.RunQueueFaulty(jobs, cluster.PolicyCoord, cluster.DisciplineBackfill,
		faults.NewInjector(sp, *seed), log)
	if err != nil {
		return err
	}
	ct := report.NewTable(
		fmt.Sprintf("cluster demo: %d x %s, %d jobs, pool %s", *nNodes, p.Name, len(jobs), clusterBudget),
		"metric", "fault-free", "faulty")
	ct.AddRow("makespan", fmtSeconds(clean.Makespan), fmtSeconds(faulty.Makespan))
	ct.AddRow("jobs completed", fmt.Sprintf("%d/%d", len(clean.Stats), len(jobs)),
		fmt.Sprintf("%d/%d", len(faulty.Stats), len(jobs)))
	ct.AddRow("avg turnaround", fmtSeconds(clean.AvgTurnaround()), fmtSeconds(faulty.AvgTurnaround()))
	ct.AddRow("node failures", "0", fmt.Sprintf("%d", faulty.Faults.NodeFailures))
	ct.AddRow("node recoveries", "0", fmt.Sprintf("%d", faulty.Faults.NodeRecoveries))
	ct.AddRow("job re-admissions", "0", fmt.Sprintf("%d", faulty.Faults.Readmissions))
	ct.AddRow("budget reclaimed", "0W", faulty.Faults.BudgetReclaimed.String())
	ct.AddRow("budget shocks", "0", fmt.Sprintf("%d", faulty.Faults.Shocks))
	fmt.Print(ct.String())
	if clean.Makespan > 0 {
		fmt.Printf("\nmakespan stretch under faults: %.2fx\n", faulty.Makespan/clean.Makespan)
	}
	printLogTail("cluster transitions", log, *logLines)
	return nil
}

func fmtSeconds(s float64) string {
	return fmt.Sprintf("%.2fs", s)
}

// printLogTail prints the first n transition-log lines (and a count of
// the rest), keeping the output short but deterministic.
func printLogTail(title string, log *trace.EventLog, n int) {
	if log == nil || n <= 0 || log.Len() == 0 {
		return
	}
	lines := strings.Split(strings.TrimRight(log.String(), "\n"), "\n")
	fmt.Printf("\n%s (%d total):\n", title, len(lines))
	for i, ln := range lines {
		if i >= n {
			fmt.Printf("  ... %d more\n", len(lines)-n)
			break
		}
		fmt.Println(ln)
	}
}
