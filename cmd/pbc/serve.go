package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/allocclient"
	"repro/internal/allocsvc"
	"repro/internal/decisiontable"
	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/telemetry"
	"repro/internal/telemetry/wire"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// serveConfig parameterizes the telemetry server's background load: a
// fault-injected resilient node run per round, re-seeded each round so
// the metrics keep moving.
type serveConfig struct {
	platform hw.Platform
	work     workload.Workload
	bound    units.Power
	units    float64
	dt       time.Duration
	spec     faults.Spec
	seed     uint64
	rounds   int           // 0 = run until the context is cancelled
	interval time.Duration // pause between rounds
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	platform, wl := platformAndWorkload(fs)
	addr := fs.String("addr", "127.0.0.1:9120", "listen address for /metrics and /healthz")
	budget := fs.Float64("budget", 208, "node power bound in watts")
	unitsN := fs.Float64("units", 2e12, "work units per background round")
	dtMs := fs.Int("dt", 250, "control loop step in milliseconds")
	spec := fs.String("fault-spec", defaultFaultSpec, "fault spec for the background load")
	seed := fs.Uint64("fault-seed", 1, "base fault seed; round n uses seed+n")
	rounds := fs.Int("rounds", 0, "background rounds to run (0 = until interrupted)")
	intervalMs := fs.Int("interval", 2000, "pause between rounds in milliseconds")
	drainMs := fs.Int("drain", 5000, "graceful-shutdown drain budget in milliseconds")
	apiWorkers := fs.Int("api-workers", 0, "allocation API worker pool size (0 = GOMAXPROCS)")
	apiQueue := fs.Int("api-queue", 0, "allocation API queue depth before 429 (0 = default, negative disables)")
	apiTimeoutMs := fs.Int("api-timeout", 5000, "allocation API default per-request deadline in milliseconds")
	peers := fs.String("peers", "", "comma-separated base URLs of every shard in the topology (including this one); served on /v1/peers for client discovery")
	tables := fs.Bool("tables", false, "precompute per-(platform, workload) decision tables at startup and serve covered requests from them")
	binary := fs.Bool("binary", false, "accept the compact binary protocol (Content-Type: "+allocsvc.BinaryContentType+") on the /v1 routes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The background load drives the CPU control stack (RAPL watchdog,
	// fault injector), so GPU platforms cannot back it. Reject the
	// platform name itself, before workload resolution: `-platform
	// titanv` is wrong here no matter which workload rides along.
	p, err := hw.PlatformByName(*platform)
	if err != nil {
		return err
	}
	if p.Kind != hw.KindCPU {
		return fmt.Errorf("serve's background load needs a CPU platform; %q is a %s platform (supported: %s)",
			p.Name, p.Kind, cpuPlatformNames())
	}
	_, w, err := resolve(*platform, *wl)
	if err != nil {
		return err
	}
	sp, err := faults.ParseSpec(*spec)
	if err != nil {
		return err
	}
	cfg := serveConfig{
		platform: p, work: w,
		bound: units.Power(*budget), units: *unitsN,
		dt:   time.Duration(*dtMs) * time.Millisecond,
		spec: sp, seed: *seed, rounds: *rounds,
		interval: time.Duration(*intervalMs) * time.Millisecond,
	}

	reg := telemetry.New()
	wire.Instrument(reg)
	defer wire.Instrument(nil)
	wire.InstrumentEngine(reg)
	var health telemetry.Health
	svcCfg := allocsvc.Config{
		Workers:        *apiWorkers,
		QueueDepth:     *apiQueue,
		DefaultTimeout: time.Duration(*apiTimeoutMs) * time.Millisecond,
		Registry:       reg,
		Binary:         *binary,
	}
	if *tables {
		set := decisiontable.New(decisiontable.Config{})
		warmStart := time.Now()
		stats := set.Warm()
		fmt.Printf("decision tables warm in %s: %d coord + %d plan tables (%d/%d pairs degraded to the exact path)\n",
			time.Since(warmStart).Round(time.Millisecond),
			stats.CoordTables, stats.PlanTables, stats.CoordSkipped, stats.PlanSkipped)
		svcCfg.Tables = set
	}
	svc := allocsvc.New(svcCfg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving /metrics, /healthz, and the allocation API (%s, %s, %s) on http://%s (fault seed %d, spec %s)\n",
		allocsvc.RouteCoord, allocsvc.RoutePlan, allocsvc.RouteSchedule, ln.Addr(), cfg.seed, sp)

	loopDone := make(chan error, 1)
	go func() {
		loopDone <- serveRounds(ctx, cfg, reg, &health)
		stop() // a finite round budget shuts the server down too
	}()

	topo := allocclient.Peers{Self: "http://" + ln.Addr().String()}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				topo.Peers = append(topo.Peers, strings.TrimRight(p, "/"))
			}
		}
	}

	drain := time.Duration(*drainMs) * time.Millisecond
	err = telemetry.ServeUntil(ctx, ln, newServeMux(reg, &health, svc, topo), drain)
	// The HTTP server has stopped accepting; drain the allocation
	// service too, so coalesced waiters finish instead of being
	// abandoned mid-computation (chaos restarts depend on this).
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if cerr := svc.Close(dctx); cerr != nil && err == nil {
		err = fmt.Errorf("draining allocation service: %w", cerr)
	}
	if lerr := <-loopDone; lerr != nil && err == nil {
		err = lerr
	}
	return err
}

// cpuPlatformNames lists the catalog's CPU platforms for error messages.
func cpuPlatformNames() string {
	var names []string
	for _, p := range hw.AllPlatforms() {
		if p.Kind == hw.KindCPU {
			names = append(names, p.Name)
		}
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// newServeMux routes the server's endpoints: Prometheus exposition on
// /metrics (with ?format=json|text variants), the health flag on
// /healthz, shard topology on /v1/peers, and — when a service is
// given — the allocation API (/v1/coord, /v1/plan, /v1/schedule).
func newServeMux(reg *telemetry.Registry, health *telemetry.Health, svc *allocsvc.Service, topo allocclient.Peers) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.MetricsHandler(reg))
	mux.Handle("/healthz", health.Handler())
	mux.HandleFunc("/v1/peers", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		b, _ := json.Marshal(topo)
		w.Write(append(b, '\n'))
	})
	if svc != nil {
		svc.Register(mux)
	}
	return mux
}

// serveRounds drives the background load: one fault-injected resilient
// node run per round, seeded seed+round, with the transition log's spans
// attached to the registry. Health reflects the last completed round.
func serveRounds(ctx context.Context, cfg serveConfig, reg *telemetry.Registry, health *telemetry.Health) error {
	log := &trace.EventLog{}
	reg.AttachTracer(log.Tracer())
	roundsRun := reg.Counter("serve_rounds_total", "Background fault rounds completed.")
	roundErrs := reg.Counter("serve_round_errors_total", "Background fault rounds that failed.")

	for round := 0; cfg.rounds == 0 || round < cfg.rounds; round++ {
		if ctx.Err() != nil {
			return nil
		}
		inj := faults.NewInjector(cfg.spec, cfg.seed+uint64(round))
		res, err := faults.RunNode(cfg.platform, cfg.work, cfg.bound, cfg.units, cfg.dt, inj, log)
		if err != nil {
			roundErrs.Inc()
			health.SetUnhealthy(fmt.Sprintf("round %d failed: %v", round, err))
			return err
		}
		roundsRun.Inc()
		updateServeHealth(health, res, round)

		if cfg.interval > 0 {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(cfg.interval):
			}
		}
	}
	return nil
}

// updateServeHealth maps a completed round's outcome onto the health
// flag: a round in which the watchdog had to engage its failsafe clamp
// marks the node unhealthy until a clean round follows.
func updateServeHealth(health *telemetry.Health, res faults.NodeRunResult, round int) {
	if res.WatchdogEngagements > 0 {
		health.SetUnhealthy(fmt.Sprintf("watchdog engaged %d time(s) in round %d",
			res.WatchdogEngagements, round))
		return
	}
	health.SetHealthy()
}
