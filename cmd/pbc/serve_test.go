package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/allocclient"
	"repro/internal/allocsvc"
	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/telemetry"
	"repro/internal/telemetry/wire"
	"repro/internal/units"
	"repro/internal/workload"
)

// serveTestConfig builds a tiny one-round config against the catalog
// defaults so tests finish quickly.
func serveTestConfig(t *testing.T) serveConfig {
	t.Helper()
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByName("stream")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := faults.ParseSpec(defaultFaultSpec)
	if err != nil {
		t.Fatal(err)
	}
	return serveConfig{
		platform: p, work: w, bound: units.Power(208),
		units: 2e11, dt: 250 * time.Millisecond,
		spec: sp, seed: 1, rounds: 1, interval: 0,
	}
}

// TestServeMetricsEndpoint runs one background round and checks the
// /metrics endpoint serves valid Prometheus exposition format with the
// stack's series present.
func TestServeMetricsEndpoint(t *testing.T) {
	reg := telemetry.New()
	wire.Instrument(reg)
	defer wire.Instrument(nil)
	var health telemetry.Health

	if err := serveRounds(context.Background(), serveTestConfig(t), reg, &health); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(newServeMux(reg, &health, nil, allocclient.Peers{}))
	defer srv.Close()

	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("/metrics status = %d", res.StatusCode)
	}
	text := string(body)
	if err := telemetry.ValidateExposition(text); err != nil {
		t.Fatalf("/metrics is not valid exposition format: %v\n%s", err, text)
	}
	for _, want := range []string{
		"serve_rounds_total 1",
		"rapl_cap_writes_total",
		"faults_sensor_reads_total",
		"# TYPE rapl_backoff_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestServeHealthFlipsOnWatchdog pins the health semantics: a round
// with watchdog engagements serves 503 from /healthz; a clean round
// flips it back to 200.
func TestServeHealthFlipsOnWatchdog(t *testing.T) {
	var health telemetry.Health
	srv := httptest.NewServer(newServeMux(nil, &health, nil, allocclient.Peers{}))
	defer srv.Close()

	get := func() (int, string) {
		res, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(res.Body)
		res.Body.Close()
		return res.StatusCode, string(body)
	}

	updateServeHealth(&health, faults.NodeRunResult{}, 0)
	if code, _ := get(); code != 200 {
		t.Fatalf("clean round: /healthz = %d, want 200", code)
	}
	updateServeHealth(&health, faults.NodeRunResult{WatchdogEngagements: 2}, 1)
	code, body := get()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("watchdog round: /healthz = %d, want 503", code)
	}
	if !strings.Contains(body, "watchdog engaged 2 time(s) in round 1") {
		t.Fatalf("503 body missing reason: %q", body)
	}
	updateServeHealth(&health, faults.NodeRunResult{}, 2)
	if code, _ := get(); code != 200 {
		t.Fatalf("recovered round: /healthz = %d, want 200", code)
	}
}

// TestServeRejectsGPUPlatformUpFront pins the CLI guard: a GPU platform
// name fails immediately with an error that names the supported CPU
// platforms — regardless of which workload was requested, because the
// platform itself is wrong for serve's background load.
func TestServeRejectsGPUPlatformUpFront(t *testing.T) {
	for _, args := range [][]string{
		{"-platform", "titanv", "-workload", "gpustream"},
		// The old code resolved the pair first, so a GPU platform with
		// the default CPU workload reported a confusing kind-mismatch
		// instead of the real problem.
		{"-platform", "titanv"},
		{"-platform", "titanxp", "-workload", "stream"},
	} {
		err := cmdServe(args)
		if err == nil {
			t.Fatalf("cmdServe(%v) accepted a GPU platform", args)
		}
		msg := err.Error()
		for _, want := range []string{"CPU platform", "haswell", "ivybridge"} {
			if !strings.Contains(msg, want) {
				t.Errorf("cmdServe(%v) error %q missing %q", args, msg, want)
			}
		}
	}
}

// TestServeMuxServesAllocationAPI smoke-tests the API routes through
// the real serve mux: a coord decision round-trips, and its requests
// appear in the shared telemetry registry next to the control-stack
// series.
func TestServeMuxServesAllocationAPI(t *testing.T) {
	reg := telemetry.New()
	var health telemetry.Health
	svc := allocsvc.New(allocsvc.Config{Workers: 2, Registry: reg})
	srv := httptest.NewServer(newServeMux(reg, &health, svc, allocclient.Peers{}))
	defer srv.Close()

	res, err := http.Post(srv.URL+"/v1/coord", "application/json",
		strings.NewReader(`{"platform":"ivybridge","workload":"stream","budget_watts":208}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("/v1/coord status = %d, body %s", res.StatusCode, body)
	}
	for _, want := range []string{`"status":"ok"`, `"proc_watts"`, `"perf_unit":"GB/s"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/v1/coord body %s missing %s", body, want)
		}
	}

	res, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(metrics), `allocsvc_requests_total{code="200",route="/v1/coord"} 1`) {
		t.Errorf("/metrics missing the allocation API counter:\n%s", metrics)
	}
}

// TestServePeersEndpoint pins the /v1/peers discovery contract: the
// topology configured with -peers is served verbatim, and
// allocclient.Discover turns it into a shard list (falling back to the
// asked URL when no peers are configured).
func TestServePeersEndpoint(t *testing.T) {
	var health telemetry.Health
	topo := allocclient.Peers{
		Self:  "http://10.0.0.1:9120",
		Peers: []string{"http://10.0.0.1:9120", "http://10.0.0.2:9120"},
	}
	srv := httptest.NewServer(newServeMux(nil, &health, nil, topo))
	defer srv.Close()

	// The discovered list must include the asked instance itself (via
	// the address that just worked) and skip its advertised self
	// address, so a peer list that redundantly names the instance does
	// not produce a duplicate shard.
	shards, err := allocclient.Discover(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{srv.URL, "http://10.0.0.2:9120"}
	if len(shards) != 2 || shards[0] != want[0] || shards[1] != want[1] {
		t.Fatalf("Discover = %v, want %v", shards, want)
	}

	lone := httptest.NewServer(newServeMux(nil, &health, nil, allocclient.Peers{Self: "http://x"}))
	defer lone.Close()
	shards, err = allocclient.Discover(context.Background(), lone.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 1 || shards[0] != lone.URL {
		t.Fatalf("peerless Discover = %v, want [%s]", shards, lone.URL)
	}
}

// TestServeRoundsStopsOnCancel checks the background loop exits cleanly
// when the serve context is cancelled between rounds.
func TestServeRoundsStopsOnCancel(t *testing.T) {
	reg := telemetry.New()
	wire.Instrument(reg)
	defer wire.Instrument(nil)
	var health telemetry.Health

	cfg := serveTestConfig(t)
	cfg.rounds = 0 // would loop forever
	cfg.interval = time.Hour

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveRounds(ctx, cfg, reg, &health) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveRounds = %v, want nil on cancel", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveRounds did not stop on context cancel")
	}
}
