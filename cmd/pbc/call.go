package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/allocclient"
	"repro/internal/allocsvc"
	"repro/internal/powertree"
)

// cmdCall exercises the resilient allocation client end-to-end against
// one or more pbc serve instances: consistent-hash shard routing,
// breaker-guarded failover, and (for coord/plan) degraded-local
// fallback when every shard is down.
func cmdCall(args []string) error {
	fs := flag.NewFlagSet("call", flag.ExitOnError)
	servers := fs.String("servers", "", "comma-separated shard base URLs (e.g. http://127.0.0.1:9120,http://127.0.0.1:9121)")
	discover := fs.String("discover", "", "ask one serve instance's /v1/peers for the shard list instead of -servers")
	route := fs.String("route", "coord", "API to call: coord, plan, schedule, tree, or recoord")
	platform, wl := platformAndWorkload(fs)
	budget := fs.Float64("budget", 208, "power budget in watts")
	strategy := fs.String("strategy", "", "coord strategy (empty = server default)")
	nodes := fs.String("nodes", "", "schedule: comma-separated id=platform node list")
	jobs := fs.String("jobs", "", "schedule: comma-separated id=workload job queue")
	treeArg := fs.String("tree-spec", defaultTreeSpec, "tree: rack spec (grammar as in pbc tree -spec)")
	phases := fs.String("phases", "", `recoord: phase spec instead of -workload (e.g. "seq=1024,out=512")`)
	timeoutMs := fs.Int("timeout", 5000, "per-attempt timeout in milliseconds")
	noDegrade := fs.Bool("no-degraded", false, "fail instead of computing answers locally when all shards are down")
	binary := fs.Bool("binary", false, "speak the compact binary protocol to shards that accept it (JSON fallback per shard)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx := context.Background()
	var shards []string
	switch {
	case *discover != "":
		var err error
		if shards, err = allocclient.Discover(ctx, *discover); err != nil {
			return err
		}
	case *servers != "":
		for _, s := range strings.Split(*servers, ",") {
			if s = strings.TrimSpace(s); s != "" {
				shards = append(shards, s)
			}
		}
	default:
		return fmt.Errorf("call: -servers or -discover is required")
	}

	client, err := allocclient.New(allocclient.Config{
		Shards:          shards,
		Timeout:         time.Duration(*timeoutMs) * time.Millisecond,
		DisableDegraded: *noDegrade,
		Binary:          *binary,
	})
	if err != nil {
		return err
	}
	defer client.Close()

	var out any
	var meta allocclient.Meta
	switch *route {
	case "coord":
		out, meta, err = client.Coord(ctx, allocsvc.CoordRequest{
			Platform: *platform, Workload: *wl, Budget: *budget, Strategy: *strategy,
		})
	case "plan":
		out, meta, err = client.Plan(ctx, allocsvc.PlanRequest{
			Platform: *platform, Workload: *wl, Budget: *budget,
		})
	case "schedule":
		var req allocsvc.ScheduleRequest
		req.Budget = *budget
		if req.Nodes, err = parseNodes(*nodes); err != nil {
			return err
		}
		if req.Jobs, err = parseJobs(*jobs); err != nil {
			return err
		}
		out, meta, err = client.Schedule(ctx, req)
	case "tree":
		tree, perr := powertree.ParseTreeSpec(*treeArg)
		if perr != nil {
			return perr
		}
		req := allocsvc.TreeRequest{Budget: *budget}
		for _, r := range tree.Racks {
			rj := allocsvc.TreeRackJSON{ID: r.ID, CapWatts: r.Cap.Watts()}
			for _, n := range r.Nodes {
				rj.Nodes = append(rj.Nodes, allocsvc.TreeNodeJSON{
					ID: n.ID, Platform: n.Platform.Name, Workload: n.Workload.Name, Priority: n.Priority,
				})
			}
			req.Racks = append(req.Racks, rj)
		}
		out, meta, err = client.Tree(ctx, req)
	case "recoord":
		req := allocsvc.RecoordRequest{Platform: *platform, Budget: *budget}
		if *phases != "" {
			req.PhaseSpec = *phases
		} else {
			req.Workload = *wl
		}
		out, meta, err = client.Recoord(ctx, req)
	default:
		return fmt.Errorf("call: unknown route %q (want coord, plan, schedule, tree, or recoord)", *route)
	}
	if err != nil {
		return err
	}

	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	where := meta.Shard
	if meta.Source == allocclient.SourceLocal {
		where = "in-process (all shards unavailable)"
	}
	encoding := "json"
	if meta.Binary {
		encoding = "binary"
	}
	fmt.Fprintf(os.Stderr, "source=%s served-by=%s encoding=%s attempts=%d retries=%d failovers=%d\n",
		meta.Source, where, encoding, meta.Attempts, meta.Retries, meta.Failovers)
	return nil
}

// parseNodes parses "n0=haswell,n1=ivybridge" into a node list.
func parseNodes(s string) ([]allocsvc.NodeJSON, error) {
	if s == "" {
		return nil, fmt.Errorf("call: -route schedule needs -nodes id=platform[,...]")
	}
	var out []allocsvc.NodeJSON
	for _, part := range strings.Split(s, ",") {
		id, platform, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || platform == "" {
			return nil, fmt.Errorf("call: bad node %q (want id=platform)", part)
		}
		out = append(out, allocsvc.NodeJSON{ID: id, Platform: platform})
	}
	return out, nil
}

// parseJobs parses "j0=stream,j1=dgemm" into a job queue.
func parseJobs(s string) ([]allocsvc.JobJSON, error) {
	if s == "" {
		return nil, fmt.Errorf("call: -route schedule needs -jobs id=workload[,...]")
	}
	var out []allocsvc.JobJSON
	for _, part := range strings.Split(s, ",") {
		id, wl, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || wl == "" {
			return nil, fmt.Errorf("call: bad job %q (want id=workload)", part)
		}
		out = append(out, allocsvc.JobJSON{ID: id, Workload: wl})
	}
	return out, nil
}
