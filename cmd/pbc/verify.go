package main

import (
	"flag"
	"fmt"

	"repro/internal/decisiontable"
	"repro/internal/hw"
	"repro/internal/invariant"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

// cmdVerify runs the cross-implementation invariant harness (package
// invariant) over the catalog — or a filtered slice of it — and renders
// the per-invariant tallies. Any violation makes the command fail, so
// `pbc verify` doubles as a CI gate next to `pbc validate`: validate
// checks the simulator physics, verify checks the coordination stack
// built on top.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	platform := fs.String("platform", "", "restrict to one platform (empty = all)")
	wl := fs.String("workload", "", "restrict to one workload (empty = all)")
	budgets := fs.Int("budgets", 0, "budget-grid points per pair (0 = default 16)")
	eps := fs.Float64("eps", 0, "boundary probe distance in watts (0 = default 1e-9)")
	skipEngine := fs.Bool("skip-engine", false, "skip the serial-vs-parallel engine identity checks")
	skipTables := fs.Bool("skip-tables", false, "skip the decision-table fast-path invariants")
	skipTree := fs.Bool("skip-tree", false, "skip the hierarchical budget-tree invariants")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := invariant.Config{
		BudgetPoints: *budgets,
		Eps:          units.Power(*eps),
		SkipEngine:   *skipEngine,
		SkipTree:     *skipTree,
	}
	if !*skipTables {
		cfg.Tables = decisiontable.New(decisiontable.Config{})
	}
	if *platform != "" {
		p, err := hw.PlatformByName(*platform)
		if err != nil {
			return err
		}
		cfg.Platforms = []hw.Platform{p}
	}
	if *wl != "" {
		w, err := workload.ByName(*wl)
		if err != nil {
			return err
		}
		cfg.Workloads = []workload.Workload{w}
	}

	rep, err := invariant.Run(cfg)
	if err != nil {
		return err
	}

	tb := report.NewTable(
		fmt.Sprintf("invariant sweep: %d pairs, %d assertions", rep.Pairs, rep.Checks),
		"invariant", "checks", "violations")
	for _, name := range rep.Invariants() {
		t := rep.PerInvariant[name]
		tb.AddRow(name, fmt.Sprintf("%d", t.Checks), fmt.Sprintf("%d", t.Violations))
	}
	fmt.Print(tb.String())

	if rep.Ok() {
		fmt.Println("\nok: all invariants hold")
		return nil
	}
	fmt.Println()
	for _, v := range rep.Violations {
		fmt.Println(v)
	}
	return fmt.Errorf("%d invariant violation(s)", len(rep.Violations))
}
