// Command pbc is the power-bounded computing toolbox: it lists platforms
// and benchmarks, runs single simulations, sweeps allocation spaces,
// profiles workloads, and runs the COORD heuristic — the same operations
// the paper's experiments compose.
//
// Usage:
//
//	pbc list platforms|workloads
//	pbc run -platform ivybridge -workload stream [-proc 120] [-mem 88]
//	pbc sweep -platform ivybridge -workload sra -budget 240
//	pbc curve -platform ivybridge -workload dgemm [-lo 130] [-hi 300] [-n 18]
//	pbc profile -platform ivybridge -workload sra
//	pbc coord -platform ivybridge -workload sra -budget 208 [-strategy coord]
//	pbc trace -platform ivybridge -workload bt -proc 140 -mem 110 -units 5e11
//	pbc faults -platform ivybridge -workload stream -budget 208 -fault-seed 7
//	pbc des -nodes 100 -arrival-spec "rate=0.2,burst=2" -seed 7 -horizon 3600
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/biglittle"
	"repro/internal/calibrate"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/corun"
	"repro/internal/dyncoord"
	"repro/internal/evalpool"
	"repro/internal/hw"
	"repro/internal/nvgov"
	"repro/internal/profile"
	"repro/internal/rapl"
	"repro/internal/report"
	"repro/internal/roofline"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/telemetry/wire"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/validate"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = cmdList(args)
	case "run":
		err = cmdRun(args)
	case "sweep":
		err = cmdSweep(args)
	case "curve":
		err = cmdCurve(args)
	case "profile":
		err = cmdProfile(args)
	case "coord":
		err = cmdCoord(args)
	case "dyncoord":
		err = cmdDynCoord(args)
	case "recoord":
		err = cmdRecoord(args)
	case "hetero":
		err = cmdHetero(args)
	case "corun":
		err = cmdCoRun(args)
	case "gpustat":
		err = cmdGPUStat(args)
	case "powercap":
		err = cmdPowercap(args)
	case "synth":
		err = cmdSynth(args)
	case "validate":
		err = cmdValidate(args)
	case "verify":
		err = cmdVerify(args)
	case "roofline":
		err = cmdRoofline(args)
	case "calibrate":
		err = cmdCalibrate(args)
	case "trace":
		err = cmdTrace(args)
	case "faults":
		err = cmdFaults(args)
	case "des":
		err = cmdDes(args)
	case "tree":
		err = cmdTree(args)
	case "serve":
		err = cmdServe(args)
	case "call":
		err = cmdCall(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "pbc: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbc:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `pbc — power-bounded computing toolbox

commands:
  list platforms|workloads       show the Table 2 platforms / Table 3 benchmarks
  run      simulate one allocation      (-platform -workload [-proc W] [-mem W] [-cap W] [-memclock MHz])
  sweep    sweep an allocation space    (-platform -workload -budget W)
  curve    perf_max vs budget curve     (-platform -workload [-lo W] [-hi W] [-n points])
  profile  extract critical powers      (-platform -workload)
  coord    run a coordination strategy  (-platform -workload -budget W [-strategy name])
  dyncoord per-phase dynamic COORD      (-platform -workload -budget W)
  recoord  online GPU re-coordination   (-platform h100 -workload llmserve -budget W
                                         [-phases "seq=1024,out=512"] [-rounds N]; telemetry-driven
                                         phase-shift detection vs static COORD and the governor)
  hetero   big.LITTLE coordination      (-workload -budget W)
  corun    co-run two tenants           (-a dgemm -b stream -proc W -mem W)
  gpustat  nvidia-smi-style device query (-platform titanxp -workload sgemm [-cap W])
  powercap Linux powercap-sysfs facade  (-platform ivybridge [zone/file [value]])
  synth    model your own workload      (-intensity F -random F -vector F [-budget W])
  validate invariant battery            ([-platform name] [-workload name])
  verify   coordination-stack invariants ([-platform name] [-workload name] [-budgets N])
  roofline power-capped roofline         (-platform -workload -budget W [-svg file])
  calibrate fit a model to measurements (-workload name -proc W -mem W [-perf X])
  trace    time-stepped run             (-platform -workload -proc W -mem W -units N [-dt ms])
  faults   fault-injection sweep        (-platform -workload -budget W [-fault-spec s] [-fault-seed n])
  des      discrete-event simulator     (-nodes N -arrival-spec s -seed n -horizon s [-mode fast|exact]
                                         [-fault-spec s] [-jobs0 N] [-replay-check]; seeded open arrivals,
                                         byte-reproducible traces)
  tree     hierarchical budget tree      (-spec s -budget W [-shock rack=frac]
                                         [-fault-spec s -fault-seed n -horizon s]; datacenter ->
                                         rack -> node water-filling with SLA-aware shedding)
  serve    HTTP endpoint                (-addr host:port [-rounds N] [-api-workers N] [-api-queue N]
                                         [-peers url,url,...]; /metrics + /healthz + /v1/peers +
                                         allocation API: POST /v1/coord, /v1/plan, /v1/schedule
                                         with coalescing and backpressure)
  call     resilient API client          (-servers url,url,... | -discover url;
                                         -route coord|plan|schedule|tree|recoord;
                                         consistent-hash sharding, circuit breakers, failover, and
                                         degraded-local fallback [-no-degraded])

sweep, curve, coord, dyncoord, and faults accept -telemetry to dump a
metrics snapshot after the run.

sweep, curve, and coord accept evaluation-engine knobs:
  -workers N      parallel evaluation workers (0 = GOMAXPROCS)
  -cache-size N   memo cache bound in entries (0 = default, negative disables)
  -stats          print engine statistics (workers, cache hits/misses) after the run
`)
}

// engineFlags registers the evaluation-engine knobs on a flag set and
// returns a function to call after parsing: it configures the shared
// engine and reports whether stats printing was requested. Stats are off
// by default so command output stays byte-stable for golden comparisons.
func engineFlags(fs *flag.FlagSet) func() bool {
	workers := fs.Int("workers", 0, "evaluation workers (0 = GOMAXPROCS)")
	cacheSize := fs.Int("cache-size", 0, "memo cache bound in entries (0 = default 65536, negative disables)")
	stats := fs.Bool("stats", false, "print evaluation-engine statistics after the run")
	return func() bool {
		evalpool.Configure(evalpool.Options{Workers: *workers, CacheSize: *cacheSize})
		return *stats
	}
}

// printEngineStats reports the shared engine's counters (workers, cache
// hits/misses, evictions) so sweep cost is observable.
func printEngineStats() {
	fmt.Printf("\nengine: %s\n", evalpool.Default().Stats())
}

// telemetryFlags registers the -telemetry knob on a flag set and
// returns a function to call after parsing: when the flag is set, it
// wires a fresh registry into the whole stack and returns a dump
// function to defer (prints the snapshot and unwires); when unset, it
// returns nil and the run stays on the free nil-handle path.
func telemetryFlags(fs *flag.FlagSet) func() func() {
	enabled := fs.Bool("telemetry", false, "instrument the run and print a metrics snapshot afterwards")
	return func() func() {
		if !*enabled {
			return nil
		}
		reg := telemetry.New()
		wire.Instrument(reg)
		wire.InstrumentEngine(reg)
		return func() {
			wire.Instrument(nil)
			fmt.Printf("\n%s", reg.Snapshot().Text())
		}
	}
}

func platformAndWorkload(fs *flag.FlagSet) (*string, *string) {
	p := fs.String("platform", "ivybridge", "platform name (pbc list platforms)")
	w := fs.String("workload", "stream", "workload name (pbc list workloads)")
	return p, w
}

func resolve(platform, wl string) (hw.Platform, workload.Workload, error) {
	p, err := hw.PlatformByName(platform)
	if err != nil {
		return hw.Platform{}, workload.Workload{}, err
	}
	w, err := workload.ByName(wl)
	if err != nil {
		return hw.Platform{}, workload.Workload{}, err
	}
	if w.Kind != p.Kind {
		return hw.Platform{}, workload.Workload{}, fmt.Errorf(
			"workload %q is a %s benchmark but platform %q is a %s platform",
			wl, w.Kind, platform, p.Kind)
	}
	return p, w, nil
}

func cmdList(args []string) error {
	what := "platforms"
	if len(args) > 0 {
		what = args[0]
	}
	switch what {
	case "platforms":
		tb := report.NewTable("Platforms (Table 2)", "name", "paper", "kind", "processor", "memory")
		for _, p := range hw.AllPlatforms() {
			switch p.Kind {
			case hw.KindCPU:
				tb.AddRow(p.Name, p.Paper, "cpu", p.CPU.Name, p.DRAM.Name)
			case hw.KindGPU:
				tb.AddRow(p.Name, p.Paper, "gpu", p.GPU.Name, p.GPU.Mem.Name)
			}
		}
		fmt.Print(tb.String())
	case "workloads":
		tb := report.NewTable("Benchmarks (Table 3)", "name", "suite", "kind", "perf unit", "ops/byte", "description")
		for _, w := range workload.AllWorkloads() {
			tb.AddRow(w.Name, w.Suite, w.Kind.String(), w.PerfUnit,
				report.FormatFloat(w.ComputeIntensity()), w.Desc)
		}
		fmt.Print(tb.String())
	default:
		return fmt.Errorf("list: unknown kind %q (want platforms or workloads)", what)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	platform, wl := platformAndWorkload(fs)
	proc := fs.Float64("proc", 0, "CPU package cap in watts (0 = uncapped)")
	mem := fs.Float64("mem", 0, "DRAM cap in watts (0 = uncapped)")
	cap := fs.Float64("cap", 0, "GPU board cap in watts (0 = TDP)")
	memClock := fs.Float64("memclock", 0, "GPU memory clock in MHz (0 = nominal)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, w, err := resolve(*platform, *wl)
	if err != nil {
		return err
	}
	var res sim.Result
	switch p.Kind {
	case hw.KindCPU:
		res, err = sim.RunCPU(p, &w, units.Power(*proc), units.Power(*mem))
	case hw.KindGPU:
		c := units.Power(*cap)
		if c == 0 {
			c = p.GPU.TDP
		}
		clk := units.Frequency(*memClock) * units.Megahertz
		if clk == 0 {
			clk = p.GPU.Mem.ClockNom
		}
		res, err = sim.RunGPU(p, &w, c, clk)
	}
	if err != nil {
		return err
	}
	tb := report.NewTable(fmt.Sprintf("%s on %s", w.Name, p.Name), "metric", "value")
	tb.AddRow("performance", fmt.Sprintf("%s %s", report.FormatFloat(res.Perf), w.PerfUnit))
	tb.AddRow("proc power", res.ProcPower.String())
	tb.AddRow("mem power", res.MemPower.String())
	tb.AddRow("total power", res.TotalPower.String())
	tb.AddRow("compute util", report.FormatFloat(res.ComputeUtil))
	tb.AddRow("memory util", report.FormatFloat(res.MemUtil))
	tb.AddRow("stall fraction", report.FormatFloat(res.StallFrac))
	tb.AddRow("throttled", fmt.Sprintf("%v", res.Throttled))
	fmt.Print(tb.String())
	if len(res.Phases) > 1 {
		pt := report.NewTable("per-phase", "phase", "rate", "proc (W)", "mem (W)", "freq", "duty")
		for _, ph := range res.Phases {
			pt.AddRow(ph.Phase, ph.Rate.String(),
				report.FormatFloat(ph.ProcPower.Watts()),
				report.FormatFloat(ph.MemPower.Watts()),
				ph.Freq.String(), report.FormatFloat(ph.Duty))
		}
		fmt.Print(pt.String())
	}
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	platform, wl := platformAndWorkload(fs)
	budget := fs.Float64("budget", 208, "total power budget in watts")
	engine := engineFlags(fs)
	telem := telemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stats := engine()
	if dump := telem(); dump != nil {
		defer dump()
	}
	p, w, err := resolve(*platform, *wl)
	if err != nil {
		return err
	}
	pb := core.NewProblem(p, w, units.Power(*budget))
	evals, err := pb.Sweep()
	if err != nil {
		return err
	}
	tb := report.NewTable(
		fmt.Sprintf("%s on %s at %s", w.Name, p.Name, units.Power(*budget)),
		"P_proc (W)", "P_mem (W)", w.PerfUnit, "actual proc", "actual mem")
	for _, e := range evals {
		tb.AddRowf(e.Alloc.Proc.Watts(), e.Alloc.Mem.Watts(), e.Result.Perf,
			e.Result.ProcPower.Watts(), e.Result.MemPower.Watts())
	}
	fmt.Print(tb.String())
	best, _ := core.Best(evals)
	worst, _ := core.Worst(evals)
	fmt.Printf("\nbest %v -> %s %s; worst -> %s; spread %.1fx\n",
		best.Alloc, report.FormatFloat(best.Result.Perf), w.PerfUnit,
		report.FormatFloat(worst.Result.Perf), core.Spread(evals))
	if stats {
		printEngineStats()
	}
	return nil
}

func cmdCurve(args []string) error {
	fs := flag.NewFlagSet("curve", flag.ExitOnError)
	platform, wl := platformAndWorkload(fs)
	lo := fs.Float64("lo", 130, "lowest budget in watts")
	hi := fs.Float64("hi", 300, "highest budget in watts")
	n := fs.Int("n", 18, "number of points")
	engine := engineFlags(fs)
	telem := telemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stats := engine()
	if dump := telem(); dump != nil {
		defer dump()
	}
	p, w, err := resolve(*platform, *wl)
	if err != nil {
		return err
	}
	s, err := sweep.BudgetCurve(p, w, units.Power(*lo), units.Power(*hi), *n)
	if err != nil {
		return err
	}
	tb := report.NewTable(s.Name, "budget (W)", w.PerfUnit)
	for i := range s.X {
		tb.AddRowf(s.X[i], s.Y[i])
	}
	fmt.Print(tb.String())
	fmt.Print(report.Chart("shape", s.X, s.Y, 56, 12))
	if stats {
		printEngineStats()
	}
	return nil
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	platform, wl := platformAndWorkload(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, w, err := resolve(*platform, *wl)
	if err != nil {
		return err
	}
	switch p.Kind {
	case hw.KindCPU:
		prof, err := profile.ProfileCPU(p, w)
		if err != nil {
			return err
		}
		cp := prof.Critical
		tb := report.NewTable(
			fmt.Sprintf("critical powers: %s on %s (%d runs)", w.Name, p.Name, prof.Runs),
			"value", "watts", "meaning")
		tb.AddRow("P_cpu_L1", report.FormatFloat(cp.CPUMax.Watts()), "max processor demand")
		tb.AddRow("P_cpu_L2", report.FormatFloat(cp.CPULowPState.Watts()), "lowest P-state power")
		tb.AddRow("P_cpu_L3", report.FormatFloat(cp.CPULowThrottle.Watts()), "throttling onset power")
		tb.AddRow("P_cpu_L4", report.FormatFloat(cp.CPUFloor.Watts()), "hardware floor")
		tb.AddRow("P_mem_L1", report.FormatFloat(cp.MemMax.Watts()), "max DRAM demand")
		tb.AddRow("P_mem_L2", report.FormatFloat(cp.MemAtCPULow.Watts()), "DRAM power at CPU L3")
		tb.AddRow("P_mem_L3", report.FormatFloat(cp.MemFloor.Watts()), "hardware floor")
		fmt.Print(tb.String())
		fmt.Printf("\nproductive threshold: %s; uncapped perf: %s %s\n",
			cp.ProductiveThreshold(), report.FormatFloat(prof.UncappedPerf), w.PerfUnit)
	case hw.KindGPU:
		prof, err := profile.ProfileGPU(p, w)
		if err != nil {
			return err
		}
		tb := report.NewTable(
			fmt.Sprintf("GPU profile: %s on %s (%d runs)", w.Name, p.Name, prof.Runs),
			"value", "watts", "meaning")
		tb.AddRow("P_tot_max", report.FormatFloat(prof.TotMax.Watts()), "board power uncapped")
		tb.AddRow("P_tot_ref", report.FormatFloat(prof.TotRef.Watts()), "mem nominal, SM min clock")
		tb.AddRow("P_mem_min", report.FormatFloat(prof.MemMin.Watts()), "card constant")
		tb.AddRow("P_mem_max", report.FormatFloat(prof.MemMax.Watts()), "card constant")
		fmt.Print(tb.String())
		fmt.Printf("\ncompute intensive: %v; uncapped perf: %s %s\n",
			prof.ComputeIntensive, report.FormatFloat(prof.UncappedPerf), w.PerfUnit)
	}
	return nil
}

func cmdCoord(args []string) error {
	fs := flag.NewFlagSet("coord", flag.ExitOnError)
	platform, wl := platformAndWorkload(fs)
	budget := fs.Float64("budget", 208, "total power budget in watts")
	strategy := fs.String("strategy", "coord", "coord, memory-first, cpu-first, even-split, nvidia-default")
	engine := engineFlags(fs)
	telem := telemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stats := engine()
	if dump := telem(); dump != nil {
		defer dump()
	}
	p, w, err := resolve(*platform, *wl)
	if err != nil {
		return err
	}
	b := units.Power(*budget)
	var d coord.Decision
	switch p.Kind {
	case hw.KindCPU:
		prof, err := profile.ProfileCPU(p, w)
		if err != nil {
			return err
		}
		found := false
		for _, s := range coord.CPUStrategies() {
			if s.Name == *strategy {
				d = s.Decide(prof, b)
				found = true
			}
		}
		if !found {
			return fmt.Errorf("unknown CPU strategy %q", *strategy)
		}
	case hw.KindGPU:
		prof, err := profile.ProfileGPU(p, w)
		if err != nil {
			return err
		}
		found := false
		for _, s := range coord.GPUStrategies() {
			if s.Name == *strategy {
				d = s.Decide(prof, b)
				found = true
			}
		}
		if !found {
			return fmt.Errorf("unknown GPU strategy %q", *strategy)
		}
	}
	fmt.Printf("%s(%s) -> %v status=%v", *strategy, b, d.Alloc, d.Status)
	if d.Status == coord.StatusSurplus {
		fmt.Printf(" surplus=%v", d.Surplus)
	}
	fmt.Println()
	if d.Status == coord.StatusTooSmall {
		return nil
	}
	pb := core.NewProblem(p, w, b)
	ev, err := pb.Evaluate(d.Alloc)
	if err != nil {
		return err
	}
	best, err := pb.PerfMax()
	if err != nil {
		return err
	}
	ratio := ev.Result.Perf / best.Result.Perf
	coord.ObserveGapRatio(ratio)
	fmt.Printf("performance: %s %s (best from sweep: %s at %v; ratio %.3f)\n",
		report.FormatFloat(ev.Result.Perf), w.PerfUnit,
		report.FormatFloat(best.Result.Perf), best.Alloc, ratio)
	if stats {
		printEngineStats()
	}
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	platform, wl := platformAndWorkload(fs)
	proc := fs.Float64("proc", 0, "CPU package cap in watts (0 = uncapped)")
	mem := fs.Float64("mem", 0, "DRAM cap in watts (0 = uncapped)")
	unitsN := fs.Float64("units", 1e11, "work units to execute")
	dtMs := fs.Int("dt", 10, "sample step in milliseconds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, w, err := resolve(*platform, *wl)
	if err != nil {
		return err
	}
	if p.Kind != hw.KindCPU {
		return fmt.Errorf("trace supports CPU platforms")
	}
	tr, err := trace.RunCPU(p, &w, units.Power(*proc), units.Power(*mem),
		*unitsN, time.Duration(*dtMs)*time.Millisecond)
	if err != nil {
		return err
	}
	fmt.Printf("elapsed %v; energy: proc %v, mem %v; avg power %v; peak window avg %v\n",
		tr.Elapsed.Round(time.Millisecond), tr.ProcEnergy, tr.MemEnergy,
		tr.AvgTotalPower, tr.PeakWindowAvg)
	var totals []float64
	for _, s := range tr.Samples {
		totals = append(totals, (s.ProcPower + s.MemPower).Watts())
	}
	fmt.Printf("total power over time: %s\n", report.Sparkline(decimate(totals, 64)))
	bd := tr.PhaseBreakdown()
	tb := report.NewTable("phase breakdown", "phase", "time")
	for _, ph := range w.Phases {
		if d, ok := bd[ph.Name]; ok {
			tb.AddRow(ph.Name, d.Round(time.Millisecond).String())
		}
	}
	fmt.Print(tb.String())
	return nil
}

// decimate reduces a series to at most n points by striding.
func decimate(vs []float64, n int) []float64 {
	if len(vs) <= n || n <= 0 {
		return vs
	}
	out := make([]float64, 0, n)
	stride := float64(len(vs)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, vs[int(float64(i)*stride)])
	}
	return out
}

func cmdDynCoord(args []string) error {
	fs := flag.NewFlagSet("dyncoord", flag.ExitOnError)
	platform, wl := platformAndWorkload(fs)
	budget := fs.Float64("budget", 208, "total power budget in watts")
	telem := telemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if dump := telem(); dump != nil {
		defer dump()
	}
	p, w, err := resolve(*platform, *wl)
	if err != nil {
		return err
	}
	if p.Kind != hw.KindCPU {
		return fmt.Errorf("dyncoord supports CPU platforms")
	}
	b := units.Power(*budget)
	plan, err := dyncoord.PlanCPU(p, w, b)
	if err != nil {
		return err
	}
	tb := report.NewTable(
		fmt.Sprintf("dynamic plan: %s on %s at %s", w.Name, p.Name, b),
		"phase", "weight", "P_cpu (W)", "P_mem (W)", "status")
	for _, st := range plan.Steps {
		tb.AddRow(st.Phase, report.FormatFloat(st.Weight),
			report.FormatFloat(st.Alloc.Proc.Watts()),
			report.FormatFloat(st.Alloc.Mem.Watts()),
			st.Status.String())
	}
	fmt.Print(tb.String())
	cmp, err := dyncoord.Compare(p, w, b)
	if err != nil {
		return err
	}
	fmt.Printf("\nstatic COORD: %s %s; dynamic per-phase: %s %s (gain %+.1f%%)\n",
		report.FormatFloat(cmp.StaticPerf), w.PerfUnit,
		report.FormatFloat(cmp.DynamicPerf), w.PerfUnit, cmp.Gain*100)
	return nil
}

func cmdHetero(args []string) error {
	fs := flag.NewFlagSet("hetero", flag.ExitOnError)
	wl := fs.String("workload", "stream", "CPU workload name")
	budget := fs.Float64("budget", 90, "node power budget in watts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := workload.ByName(*wl)
	if err != nil {
		return err
	}
	node := biglittle.Reference()
	d, err := biglittle.Coordinate(node, w, units.Power(*budget))
	if err != nil {
		return err
	}
	if d.Rejected {
		fmt.Printf("budget %s rejected: no activation mode runs productively\n",
			units.Power(*budget))
		return nil
	}
	fmt.Printf("mode %s, allocation %v -> %s %s\n",
		d.Mode, d.Alloc, report.FormatFloat(d.PredictedPerf), w.PerfUnit)
	res, err := biglittle.Run(node, &w, d.Alloc)
	if err != nil {
		return err
	}
	fmt.Printf("actual draw: big %v, little %v, mem %v (total %v); big work share %.0f%%\n",
		res.BigPower, res.LittlePower, res.MemPower, res.TotalPower, res.BigShare*100)
	return nil
}

func cmdCoRun(args []string) error {
	fs := flag.NewFlagSet("corun", flag.ExitOnError)
	platform := fs.String("platform", "ivybridge", "CPU platform name")
	aName := fs.String("a", "dgemm", "first tenant workload")
	bName := fs.String("b", "stream", "second tenant workload")
	proc := fs.Float64("proc", 200, "shared package cap in watts")
	mem := fs.Float64("mem", 110, "shared DRAM cap in watts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, wa, err := resolve(*platform, *aName)
	if err != nil {
		return err
	}
	_, wb, err := resolve(*platform, *bName)
	if err != nil {
		return err
	}
	parts, best, err := corun.BestPartition(p, wa, wb, units.Power(*proc), units.Power(*mem), 0.1)
	if err != nil {
		return err
	}
	tb := report.NewTable(
		fmt.Sprintf("core partitions: %s + %s under (%s, %s)", wa.Name, wb.Name,
			units.Power(*proc), units.Power(*mem)),
		wa.Name+" cores", wa.Name+" perf", wb.Name+" perf", "weighted speedup")
	for i, pt := range parts {
		mark := ""
		if i == best {
			mark = "  <- best"
		}
		tb.AddRow(
			fmt.Sprintf("%.0f%%", pt.FracA*100),
			report.FormatFloat(pt.Result.PerfA),
			report.FormatFloat(pt.Result.PerfB),
			report.FormatFloat(pt.WeightedSpeedup)+mark,
		)
	}
	fmt.Print(tb.String())
	b := parts[best]
	fmt.Printf("\nbest: %.0f%% cores to %s; slowdowns %.2f / %.2f; package %v, dram %v\n",
		b.FracA*100, wa.Name, b.Result.SlowdownA, b.Result.SlowdownB,
		b.Result.ProcPower, b.Result.MemPower)
	return nil
}

func cmdGPUStat(args []string) error {
	fs := flag.NewFlagSet("gpustat", flag.ExitOnError)
	platform := fs.String("platform", "titanxp", "GPU platform name")
	wl := fs.String("workload", "sgemm", "GPU workload providing the activity level")
	cap := fs.Float64("cap", 0, "board power cap in watts (0 = TDP)")
	memClock := fs.Float64("memclock", 0, "memory clock in MHz (0 = nominal)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, w, err := resolve(*platform, *wl)
	if err != nil {
		return err
	}
	if p.Kind != hw.KindGPU {
		return fmt.Errorf("gpustat needs a GPU platform")
	}
	gov := nvgov.New(p.GPU)
	if *cap > 0 {
		if err := gov.SetPowerCap(units.Power(*cap)); err != nil {
			return err
		}
	}
	if *memClock > 0 {
		gov.SetMemClock(units.Frequency(*memClock) * units.Megahertz)
	}
	// Derive the steady-state activity by running the workload once.
	c := units.Power(*cap)
	if c == 0 {
		c = p.GPU.TDP
	}
	clk := gov.MemClock()
	res, err := sim.RunGPU(p, &w, c, clk)
	if err != nil {
		return err
	}
	act := 0.0
	for _, ph := range res.Phases {
		act += ph.Weight * ph.Activity
	}
	fmt.Print(gov.Query(act).String())
	return nil
}

func cmdPowercap(args []string) error {
	fs := flag.NewFlagSet("powercap", flag.ExitOnError)
	platform := fs.String("platform", "ivybridge", "CPU platform name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := hw.PlatformByName(*platform)
	if err != nil {
		return err
	}
	if p.Kind != hw.KindCPU {
		return fmt.Errorf("powercap needs a CPU platform")
	}
	pcfs := rapl.NewPowercapFS(rapl.NewController(p.CPU, p.DRAM))
	rest := fs.Args()
	switch len(rest) {
	case 0: // list all files with values
		for _, path := range pcfs.List() {
			v, err := pcfs.Read(path)
			if err != nil {
				return err
			}
			fmt.Printf("%-46s %s\n", path, v)
		}
	case 1: // read one file
		v, err := pcfs.Read(rest[0])
		if err != nil {
			return err
		}
		fmt.Println(v)
	case 2: // write then read back
		if err := pcfs.Write(rest[0], rest[1]); err != nil {
			return err
		}
		v, err := pcfs.Read(rest[0])
		if err != nil {
			return err
		}
		fmt.Println(v)
	default:
		return fmt.Errorf("powercap: usage [zone/file [value]]")
	}
	return nil
}

func cmdSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	platform := fs.String("platform", "ivybridge", "CPU platform name")
	intensity := fs.Float64("intensity", 1.0, "arithmetic intensity in ops/byte")
	random := fs.Float64("random", 0, "random-access fraction in [0,1]")
	vector := fs.Float64("vector", 0.6, "vectorization quality in [0,1]")
	overlapQ := fs.Float64("overlap", 0.6, "compute/memory overlap quality in [0,1]")
	imbalance := fs.Float64("imbalance", 0, "two-phase traffic imbalance in [0,1]")
	budget := fs.Float64("budget", 208, "node power budget in watts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := hw.PlatformByName(*platform)
	if err != nil {
		return err
	}
	if p.Kind != hw.KindCPU {
		return fmt.Errorf("synth needs a CPU platform")
	}
	spec := workload.SyntheticSpec{
		Name: "custom", Kind: hw.KindCPU,
		OpsPerByte: *intensity, Randomness: *random,
		Vectorized: *vector, OverlapQuality: *overlapQ,
		PhaseImbalance: *imbalance,
	}
	w, err := spec.Build()
	if err != nil {
		return err
	}
	prof, err := profile.ProfileCPU(p, w)
	if err != nil {
		return err
	}
	fmt.Printf("profile: CPU demand %v, DRAM demand %v, productive threshold %v\n",
		prof.Critical.CPUMax, prof.Critical.MemMax, prof.Critical.ProductiveThreshold())
	b := units.Power(*budget)
	d := coord.CPU(prof, b)
	if d.Status == coord.StatusTooSmall {
		fmt.Printf("COORD rejects %v: below the productive threshold\n", b)
		return nil
	}
	res, err := sim.RunCPU(p, &w, d.Alloc.Proc, d.Alloc.Mem)
	if err != nil {
		return err
	}
	bestPb := core.NewProblem(p, w, b)
	best, err := bestPb.PerfMax()
	if err != nil {
		return err
	}
	fmt.Printf("COORD %v -> %s GFLOP/s (sweep best %s; ratio %.3f)\n",
		d.Alloc, report.FormatFloat(res.Perf),
		report.FormatFloat(best.Result.Perf), res.Perf/best.Result.Perf)
	return nil
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	platform := fs.String("platform", "", "platform to validate (empty = full catalog)")
	wl := fs.String("workload", "", "workload to validate against (empty = reference)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var issues []validate.Issue
	switch {
	case *platform == "":
		issues = validate.Catalog()
	case *wl == "":
		p, err := hw.PlatformByName(*platform)
		if err != nil {
			return err
		}
		issues = validate.Platform(p)
	default:
		p, w, err := resolve(*platform, *wl)
		if err != nil {
			return err
		}
		issues = validate.Pair(p, w)
	}
	if len(issues) == 0 {
		fmt.Println("ok: all invariants hold")
		return nil
	}
	for _, i := range issues {
		fmt.Println(i)
	}
	return fmt.Errorf("%d invariant violation(s)", len(issues))
}

func cmdRoofline(args []string) error {
	fs := flag.NewFlagSet("roofline", flag.ExitOnError)
	platform, wl := platformAndWorkload(fs)
	budget := fs.Float64("budget", 208, "total power budget in watts")
	svgPath := fs.String("svg", "", "write an SVG roofline chart to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, w, err := resolve(*platform, *wl)
	if err != nil {
		return err
	}
	if p.Kind != hw.KindCPU {
		return fmt.Errorf("roofline supports CPU platforms")
	}
	b := units.Power(*budget)
	free, err := roofline.ForCPU(p, 0, 0)
	if err != nil {
		return err
	}
	fmt.Printf("uncapped roofline: compute %s, bandwidth %s, ridge %.2f ops/byte\n",
		free.ComputeRoof, free.BandwidthRoof, free.Ridge)
	fmt.Printf("%s intensity: %.3g ops/byte -> %s on the uncapped roofline\n",
		w.Name, w.ComputeIntensity(), free.Bound(&w))
	proc, mem, m, err := roofline.BalancedAllocation(p, &w, b, 4)
	if err != nil {
		return err
	}
	fmt.Printf("roofline-balanced allocation at %s: cpu %s / mem %s (ridge %.2f, predicted %s)\n",
		b, proc, mem, m.Ridge, m.PredictedPerf(p, &w))
	res, err := sim.RunCPU(p, &w, proc, mem)
	if err != nil {
		return err
	}
	bestPb := core.NewProblem(p, w, b)
	best, err := bestPb.PerfMax()
	if err != nil {
		return err
	}
	fmt.Printf("simulated: %s %s (sweep best %s; ratio %.3f)\n",
		report.FormatFloat(res.Perf), w.PerfUnit,
		report.FormatFloat(best.Result.Perf), res.Perf/best.Result.Perf)
	if *svgPath != "" {
		quarter := units.Power(b.Watts() / 4)
		fig, err := roofline.Chart(p, &w, b, []units.Power{quarter, 2 * quarter, 3 * quarter})
		if err != nil {
			return err
		}
		if err := os.WriteFile(*svgPath, []byte(fig.SVG()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}
	return nil
}

func cmdCalibrate(args []string) error {
	fs := flag.NewFlagSet("calibrate", flag.ExitOnError)
	platform, wl := platformAndWorkload(fs)
	procW := fs.Float64("proc", 0, "measured uncapped package power in watts (0 = skip)")
	memW := fs.Float64("mem", 0, "measured uncapped DRAM power in watts (0 = skip)")
	perf := fs.Float64("perf", 0, "measured performance in the workload's unit (0 = skip)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, w, err := resolve(*platform, *wl)
	if err != nil {
		return err
	}
	if p.Kind != hw.KindCPU {
		return fmt.Errorf("calibrate supports CPU platforms")
	}
	res, err := calibrate.Fit(p, w, calibrate.Anchors{
		ProcPower: units.Power(*procW),
		MemPower:  units.Power(*memW),
		Perf:      *perf,
	})
	if err != nil {
		return err
	}
	fmt.Printf("fit in %d simulator runs; residuals: proc %.1f%%, mem %.1f%%, perf %.1f%% (converged=%v)\n",
		res.Iterations, res.ProcErr*100, res.MemErr*100, res.PerfErr*100, res.Converged())
	final, err := sim.RunCPU(p, &res.Workload, 0, 0)
	if err != nil {
		return err
	}
	fmt.Printf("calibrated uncapped run: %s %s, proc %v, mem %v\n",
		report.FormatFloat(final.Perf), w.PerfUnit, final.ProcPower, final.MemPower)
	tb := report.NewTable("fitted phase parameters", "phase", "bw eff", "compute eff", "activity (busy/stalled)")
	for _, ph := range res.Workload.Phases {
		tb.AddRow(ph.Name, report.FormatFloat(ph.BandwidthEff), report.FormatFloat(ph.ComputeEff),
			fmt.Sprintf("%.2f / %.2f", ph.ActivityBase, ph.StallActivity))
	}
	fmt.Print(tb.String())
	return nil
}
