// Package repro reproduces "The Case for Cross-Component Power
// Coordination on Power Bounded Systems" (Ge, Feng, Allen, Zou; ICPP
// 2016): power-bounded computing at the compute-node level, the six-way
// categorization of processor/memory power-allocation scenarios, the
// critical power values that bound them, and the COORD category-based
// heuristic that pinpoints near-optimal cross-component allocations from
// lightweight profiling.
//
// The repository layout:
//
//	internal/units      physical quantities (power, energy, frequency, bandwidth)
//	internal/hw         component models and the four Table 2 platforms
//	internal/workload   analytic models of the 17 Table 3 benchmarks
//	internal/perfmodel  roofline-with-overlap operating-point solver
//	internal/rapl       RAPL emulation (MSRs, P/T-state actuator, DRAM throttling)
//	internal/nvgov      Nvidia board power governor emulation
//	internal/sim        fixed-point node simulator
//	internal/core       the power-bounded computing problem and exhaustive solver
//	internal/category   allocation-scenario categorization (I-VI CPU, I-III GPU)
//	internal/profile    lightweight critical-power profiling
//	internal/coord      COORD Algorithms 1 and 2 plus baselines
//	internal/sweep      experiment harness (curves, splits, comparisons)
//	internal/trace      time-stepped power/energy tracing
//	internal/cluster    power-bounded cluster scheduling extension
//	internal/experiments  regeneration of every paper table and figure
//	internal/report     tables, CSV, text charts
//	cmd/pbc             interactive toolbox CLI
//	cmd/experiments     regenerates the full evaluation
//	examples/           runnable scenarios (quickstart, capacity, gputune, cluster)
//
// The benchmarks in bench_test.go regenerate each paper artifact under
// "go test -bench"; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-versus-measured results.
package repro
