// Quickstart: cap a compute node, watch what happens to performance, and
// let COORD pick the split for you.
//
// This walks the paper's core loop in five steps: build a platform, run a
// workload uncapped, cap it badly, profile it, and apply COORD.
//
// Every simulated run goes through the shared evaluation engine; set
// PBC_ENGINE_STATS=1 to see what the walk cost (workers, cache
// hits/misses). The default output is unchanged by the stats knob.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/evalpool"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	// 1. A dual-socket IvyBridge node with 256 GB DDR3 (Table 2,
	// CPU Platform I) running the STREAM bandwidth benchmark.
	node, err := hw.PlatformByName("ivybridge")
	if err != nil {
		log.Fatal(err)
	}
	stream, err := workload.ByName("stream")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Uncapped: the node's full-power baseline.
	const budget = units.Power(208)
	pb := core.NewProblem(node, stream, budget)
	freeEv, err := pb.Evaluate(core.Allocation{}) // zero caps = uncapped
	if err != nil {
		log.Fatal(err)
	}
	free := freeEv.Result
	fmt.Printf("uncapped:            %6.1f GB/s  (cpu %v, dram %v)\n",
		free.Perf, free.ProcPower, free.MemPower)

	// 3. The 208 W node budget, split badly: starve the DRAM.
	badEv, err := pb.Evaluate(core.Allocation{Proc: 140, Mem: budget - 140})
	if err != nil {
		log.Fatal(err)
	}
	bad := badEv.Result
	fmt.Printf("bad split (140/68):  %6.1f GB/s  — %.0fx slower, same budget\n",
		bad.Perf, free.Perf/bad.Perf)

	// 4. Profile once (a handful of capped runs) to learn the workload's
	// critical power values.
	prof, err := profile.ProfileCPU(node, stream)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profile (%d runs):   CPU demand %v, DRAM demand %v, floors %v/%v\n",
		prof.Runs, prof.Critical.CPUMax, prof.Critical.MemMax,
		prof.Critical.CPUFloor, prof.Critical.MemFloor)

	// 5. COORD picks a near-optimal split for the same 208 W.
	d := coord.CPU(prof, budget)
	if d.Status == coord.StatusTooSmall {
		log.Fatalf("COORD rejected the budget %v", budget)
	}
	goodEv, err := pb.Evaluate(d.Alloc)
	if err != nil {
		log.Fatal(err)
	}
	good := goodEv.Result
	fmt.Printf("COORD %v: %6.1f GB/s\n", d.Alloc, good.Perf)

	// Compare against the exhaustive sweep (the oracle).
	best, err := pb.PerfMax()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep best %v: %6.1f GB/s  (COORD at %.1f%% of best)\n",
		best.Alloc, best.Result.Perf, 100*good.Perf/best.Result.Perf)

	// Optional: what did all of that cost the evaluation engine?
	if os.Getenv("PBC_ENGINE_STATS") != "" {
		fmt.Printf("engine: %s\n", evalpool.Default().Stats())
	}
}
