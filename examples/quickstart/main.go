// Quickstart: cap a compute node, watch what happens to performance, and
// let COORD pick the split for you.
//
// This walks the paper's core loop in five steps: build a platform, run a
// workload uncapped, cap it badly, profile it, and apply COORD.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	// 1. A dual-socket IvyBridge node with 256 GB DDR3 (Table 2,
	// CPU Platform I) running the STREAM bandwidth benchmark.
	node, err := hw.PlatformByName("ivybridge")
	if err != nil {
		log.Fatal(err)
	}
	stream, err := workload.ByName("stream")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Uncapped: the node's full-power baseline.
	free, err := sim.RunCPU(node, &stream, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uncapped:            %6.1f GB/s  (cpu %v, dram %v)\n",
		free.Perf, free.ProcPower, free.MemPower)

	// 3. A 208 W node budget, split badly: starve the DRAM.
	const budget = units.Power(208)
	bad, err := sim.RunCPU(node, &stream, 140, budget-140)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bad split (140/68):  %6.1f GB/s  — %.0fx slower, same budget\n",
		bad.Perf, free.Perf/bad.Perf)

	// 4. Profile once (a handful of capped runs) to learn the workload's
	// critical power values.
	prof, err := profile.ProfileCPU(node, stream)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profile (%d runs):   CPU demand %v, DRAM demand %v, floors %v/%v\n",
		prof.Runs, prof.Critical.CPUMax, prof.Critical.MemMax,
		prof.Critical.CPUFloor, prof.Critical.MemFloor)

	// 5. COORD picks a near-optimal split for the same 208 W.
	d := coord.CPU(prof, budget)
	if d.Status == coord.StatusTooSmall {
		log.Fatalf("COORD rejected the budget %v", budget)
	}
	good, err := sim.RunCPU(node, &stream, d.Alloc.Proc, d.Alloc.Mem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("COORD %v: %6.1f GB/s\n", d.Alloc, good.Perf)

	// Compare against the exhaustive sweep (the oracle).
	best, err := core.NewProblem(node, stream, budget).PerfMax()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep best %v: %6.1f GB/s  (COORD at %.1f%% of best)\n",
		best.Alloc, best.Result.Perf, 100*good.Perf/best.Result.Perf)
}
