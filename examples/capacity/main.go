// Capacity planning: how much power does each workload actually need?
//
// A facility operator handing out node power budgets wants, per workload:
// the maximum useful budget (beyond which watts are wasted), the minimum
// productive budget (below which the node thrashes), and the knee of the
// perf_max curve (the best performance-per-watt operating region). This
// example derives all three for every CPU benchmark of Table 3 on both
// server platforms — the paper's Section 3.1 insights turned into a
// planning table.
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	for _, platform := range []string{"ivybridge", "haswell"} {
		node, err := hw.PlatformByName(platform)
		if err != nil {
			log.Fatal(err)
		}
		tb := report.NewTable(
			fmt.Sprintf("Power capacity plan — %s", node.CPU.Name),
			"workload", "min productive (W)", "knee (W)", "max useful (W)",
			"perf at knee", "perf at max", "knee efficiency")

		for _, w := range workload.CPUWorkloads() {
			prof, err := profile.ProfileCPU(node, w)
			if err != nil {
				log.Fatal(err)
			}
			minProductive := prof.Critical.ProductiveThreshold()
			maxUseful := prof.Critical.CPUMax + prof.Critical.MemMax

			// The perf_max curve between the two ends locates the knee.
			budgets := core.BudgetRange(minProductive, maxUseful+20, 16)
			pts, err := core.Curve(node, w, budgets)
			if err != nil {
				log.Fatal(err)
			}
			knee, ok := core.Knee(pts, 0.25)
			if !ok {
				knee = maxUseful
			}
			kneePerf := perfAt(pts, knee)
			tb.AddRow(
				w.Name,
				report.FormatFloat(minProductive.Watts()),
				report.FormatFloat(knee.Watts()),
				report.FormatFloat(maxUseful.Watts()),
				report.FormatFloat(kneePerf)+" "+w.PerfUnit,
				report.FormatFloat(pts[len(pts)-1].PerfMax)+" "+w.PerfUnit,
				fmt.Sprintf("%.0f%%", 100*kneePerf/pts[len(pts)-1].PerfMax),
			)
		}
		fmt.Print(tb.String())
		fmt.Println()
	}
	fmt.Println("Reading the table: grant each job at least its 'min productive' watts")
	fmt.Println("(below that the paper says to defer the job), aim for the knee, and")
	fmt.Println("never grant more than 'max useful' — the surplus belongs to other jobs.")
}

func perfAt(pts []core.CurvePoint, budget units.Power) float64 {
	best := 0.0
	for _, pt := range pts {
		if pt.Budget <= budget {
			best = pt.PerfMax
		}
	}
	return best
}
