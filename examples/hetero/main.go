// Heterogeneous power coordination on a big.LITTLE node.
//
// With two core clusters sharing one memory system, the power-bounded
// problem gains a dimension homogeneous nodes do not have: which clusters
// to power at all. This example sweeps budgets for a memory-bound and a
// compute-bound workload and shows the activation mode the coordinator
// picks at each budget — LITTLE-only at tight budgets (the big cluster's
// idle floor buys more performance when spent on memory), big-only in the
// middle, both clusters when power is plentiful.
//
//	go run ./examples/hetero
package main

import (
	"fmt"
	"log"

	"repro/internal/biglittle"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	node := biglittle.Reference()
	fmt.Printf("node: %s + %s sharing %s\n\n",
		node.Big.Name, node.Little.Name, node.DRAM.Name)

	for _, name := range []string{"stream", "dgemm"} {
		w, err := workload.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		tb := report.NewTable(
			fmt.Sprintf("%s: activation mode and allocation by budget", name),
			"budget (W)", "mode", "big (W)", "little (W)", "mem (W)", w.PerfUnit, "vs naive-both")
		for _, budget := range []units.Power{45, 55, 70, 90, 120, 160, 220} {
			d, err := biglittle.Coordinate(node, w, budget)
			if err != nil {
				log.Fatal(err)
			}
			if d.Rejected {
				tb.AddRow(report.FormatFloat(budget.Watts()), "rejected", "-", "-", "-", "-", "-")
				continue
			}
			// Naive policy: always both clusters, fixed 30% to memory.
			mem := units.Power(budget.Watts() * 0.3)
			rest := budget - mem
			naive, err := biglittle.Run(node, &w, biglittle.Allocation{
				Big: rest / 2, Little: rest / 2, Mem: mem,
			})
			vsNaive := "-"
			if err == nil && naive.Perf > 0 {
				vsNaive = fmt.Sprintf("%+.0f%%", 100*(d.PredictedPerf/naive.Perf-1))
			}
			tb.AddRow(
				report.FormatFloat(budget.Watts()),
				d.Mode.String(),
				report.FormatFloat(d.Alloc.Big.Watts()),
				report.FormatFloat(d.Alloc.Little.Watts()),
				report.FormatFloat(d.Alloc.Mem.Watts()),
				report.FormatFloat(d.PredictedPerf),
				vsNaive,
			)
		}
		fmt.Print(tb.String())
		fmt.Println()
	}
	fmt.Println("Powering a cluster off is an allocation decision: at tight budgets the")
	fmt.Println("coordinator spends the big cluster's idle watts on memory bandwidth instead.")
}
