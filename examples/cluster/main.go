// Power-bounded cluster scheduling: divide a facility budget over nodes.
//
// Eight IvyBridge nodes and two Titan XP hosts share a 2000 W facility
// budget — not enough to run everything at full power. The scheduler
// profiles each queued job, admits jobs only when it can grant at least
// their productive threshold (a GPU job's card minimum cap), caps grants
// at each job's maximum demand, reclaims COORD's reported surplus, and
// boosts constrained jobs with what is left — the paper's node-level
// insights applied at cluster scale.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/report"
	"repro/internal/schedviz"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	node, err := hw.PlatformByName("ivybridge")
	if err != nil {
		log.Fatal(err)
	}
	gpuNode, err := hw.PlatformByName("titanxp")
	if err != nil {
		log.Fatal(err)
	}
	var nodes []cluster.Node
	for i := 0; i < 8; i++ {
		nodes = append(nodes, cluster.Node{
			ID:       fmt.Sprintf("node%02d", i),
			Platform: node,
		})
	}
	for i := 0; i < 2; i++ {
		nodes = append(nodes, cluster.Node{
			ID:       fmt.Sprintf("gpu%02d", i),
			Platform: gpuNode,
		})
	}

	const facilityBudget = units.Power(2000)
	sched, err := cluster.NewScheduler(facilityBudget, nodes)
	if err != nil {
		log.Fatal(err)
	}

	queue := []cluster.Job{
		job("dgemm-a", "dgemm"), job("mg-a", "mg"), job("stream-a", "stream"),
		job("sgemm-g", "sgemm"), job("sra-a", "sra"), job("bt-a", "bt"),
		job("minife-g", "minife"), job("cg-a", "cg"), job("ep-a", "ep"),
		job("ft-a", "ft"),
	}

	out, err := sched.Schedule(queue)
	if err != nil {
		log.Fatal(err)
	}
	if err := sched.Validate(out); err != nil {
		log.Fatal(err)
	}

	tb := report.NewTable(
		fmt.Sprintf("Schedule under a %s facility budget", facilityBudget),
		"job", "node", "granted", "split (proc/mem)", "expected perf", "actual draw")
	for _, pl := range out.Placements {
		tb.AddRow(pl.JobID, pl.NodeID,
			pl.Budget.String(),
			fmt.Sprintf("%.0f/%.0f W", pl.Alloc.Proc.Watts(), pl.Alloc.Mem.Watts()),
			report.FormatFloat(pl.ExpectedPerf),
			pl.ExpectedPower.String())
	}
	fmt.Print(tb.String())
	fmt.Printf("\nadmitted %d of %d jobs; deferred: %v\n",
		len(out.Placements), len(queue), out.Deferred)
	fmt.Printf("granted %s of %s; pool remaining %s; expected draw %s\n",
		facilityBudget-out.PoolLeft, facilityBudget, out.PoolLeft, out.TotalExpectedPower)
	fmt.Println("\ndeferred jobs wait for the next round rather than run below their")
	fmt.Println("productive threshold — power they would consume delivers almost no work.")

	// Run the same mix as a timed queue and render the schedule as a
	// Gantt chart (suspend/resume and node assignment become visible).
	timed := []cluster.TimedJob{
		{Job: queue[0], Units: 5e13}, {Job: queue[1], Units: 4e12},
		{Job: queue[2], Units: 4e12}, {Job: queue[4], Units: 3e9},
		{Job: queue[5], Units: 2e13}, {Job: queue[7], Units: 1.5e12},
		{Job: queue[8], Units: 2e13}, {Job: queue[9], Units: 1e13},
	}
	sched2, err := cluster.NewScheduler(900, nodes[:8])
	if err != nil {
		log.Fatal(err)
	}
	qres, err := sched2.RunQueue(timed, cluster.PolicyCoord)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntimed queue at 900 W: makespan %.1f s, avg wait %.1f s, max slowdown %.2fx, energy %v\n",
		qres.Makespan, qres.AvgWait(), qres.MaxSlowdown(), qres.Energy)
	if err := os.WriteFile("schedule.svg", []byte(schedviz.Gantt("CPU queue under 900 W", &qres)), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote schedule.svg (Gantt chart of the queue)")
}

func job(id, wl string) cluster.Job {
	w, err := workload.ByName(wl)
	if err != nil {
		log.Fatal(err)
	}
	return cluster.Job{ID: id, Workload: w}
}
