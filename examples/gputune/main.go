// GPU auto-tuning: beat the default driver policy under a power cap.
//
// The default Nvidia capping policy always runs the memory at its nominal
// clock and throttles only the SMs — oblivious to both the cap and the
// application (paper Section 6.3). This example profiles each GPU
// benchmark on the Titan XP, lets COORD choose the memory clock per cap,
// and reports the gain over the default policy across the settable cap
// range, reproducing the paper's "up to 33% better" result.
//
//	go run ./examples/gputune
package main

import (
	"fmt"
	"log"

	"repro/internal/coord"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	card, err := hw.PlatformByName("titanxp")
	if err != nil {
		log.Fatal(err)
	}
	caps := []units.Power{130, 150, 175, 200, 225, 250, 275, 300}

	tb := report.NewTable(
		fmt.Sprintf("COORD vs default policy — %s (gain in %% at each cap)", card.GPU.Name),
		append([]string{"workload", "kind"}, capHeaders(caps)...)...)

	var worstCase, bestCase float64 = 1e18, 0
	for _, w := range workload.GPUWorkloads() {
		prof, err := profile.ProfileGPU(card, w)
		if err != nil {
			log.Fatal(err)
		}
		kind := "memory"
		if prof.ComputeIntensive {
			kind = "compute"
		}
		row := []string{w.Name, kind}
		for _, cap := range caps {
			d := coord.GPU(prof, cap, coord.DefaultGamma)
			tuned, err := sim.RunGPUMemPower(card, &w, cap, d.Alloc.Mem)
			if err != nil {
				log.Fatal(err)
			}
			dflt, err := sim.RunGPU(card, &w, cap, card.GPU.Mem.ClockNom)
			if err != nil {
				log.Fatal(err)
			}
			gain := tuned.Perf/dflt.Perf - 1
			worstCase = min(worstCase, gain)
			bestCase = max(bestCase, gain)
			row = append(row, fmt.Sprintf("%+.1f%%", 100*gain))
		}
		tb.AddRow(row...)
	}
	fmt.Print(tb.String())
	fmt.Printf("\nacross all workloads and caps: gain ranges from %+.1f%% to %+.1f%%\n",
		100*worstCase, 100*bestCase)
	fmt.Println("compute-intensive kernels gain most at tight caps (memory underclocked,")
	fmt.Println("freed power reclaimed by the SMs); memory-bound kernels gain a steady few")
	fmt.Println("percent from raising the memory clock above the default nominal setting.")
}

func capHeaders(caps []units.Power) []string {
	var hs []string
	for _, c := range caps {
		hs = append(hs, fmt.Sprintf("%.0f W", c.Watts()))
	}
	return hs
}
